//! The naive, dense reference implementation of the Glossy flood.
//!
//! This is the original slot-by-slot simulation the repository shipped
//! before the optimized kernel in [`crate::flood`] existed: per-flood state
//! `Vec`s, a per-slot transmitter `Vec`, `O(transmitters)` membership scans
//! and dense [`Topology::link`] lookups for every (transmitter, receiver)
//! pair. It is deliberately kept **unchanged** as the equivalence oracle:
//! the optimized [`FloodSimulator`](crate::FloodSimulator) consumes the RNG
//! in exactly the same order and performs every floating-point operation in
//! the same sequence, so its outcomes are pinned byte-for-byte to this
//! module by the `flood_equivalence` test suite and a property test over
//! random topologies.
//!
//! Use [`ReferenceFloodSimulator`] only in tests and benchmarks; production
//! paths (the LWB round executor, the round engine, Crystal) all run the
//! optimized kernel.

use crate::config::GlossyConfig;
use crate::outcome::{FloodOutcome, NodeFloodOutcome};
use dimmer_sim::{
    InterferenceModel, NodeId, RadioAccounting, RadioState, SimRng, SimTime, Topology,
};

/// The naive reference flood simulator (see the module docs).
///
/// # Examples
///
/// ```
/// use dimmer_glossy::{ReferenceFloodSimulator, GlossyConfig};
/// use dimmer_sim::{Topology, NoInterference, SimRng, SimTime, NodeId};
/// let topo = Topology::line(5, 6.0, 3);
/// let sim = ReferenceFloodSimulator::new(&topo, &NoInterference);
/// let out = sim.flood(&GlossyConfig::default(), NodeId(2), SimTime::ZERO, &mut SimRng::seed_from(0));
/// assert_eq!(out.reach_count(), 5);
/// ```
#[derive(Debug)]
pub struct ReferenceFloodSimulator<'a> {
    topology: &'a Topology,
    interference: &'a dyn InterferenceModel,
}

#[derive(Debug, Clone)]
struct NodeState {
    participating: bool,
    has_packet: bool,
    first_rx_slot: Option<u8>,
    tx_remaining: u8,
    next_tx_slot: Option<usize>,
    relays: u8,
    /// Relay slot index *after* which the node switched its radio off.
    off_after_slot: Option<usize>,
}

impl<'a> ReferenceFloodSimulator<'a> {
    /// Creates a reference flood simulator for the given topology and
    /// interference environment.
    pub fn new(topology: &'a Topology, interference: &'a dyn InterferenceModel) -> Self {
        ReferenceFloodSimulator {
            topology,
            interference,
        }
    }

    /// The topology this simulator floods over.
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// Runs one flood in which every node participates.
    pub fn flood(
        &self,
        cfg: &GlossyConfig,
        initiator: NodeId,
        start: SimTime,
        rng: &mut SimRng,
    ) -> FloodOutcome {
        let participants = vec![true; self.topology.num_nodes()];
        self.flood_with_participants(cfg, initiator, start, rng, &participants)
    }

    /// Runs one flood with an explicit participation mask (nodes that missed
    /// the LWB schedule keep their radio off and are excluded).
    ///
    /// # Panics
    ///
    /// Panics if `participants` does not cover every node, if the initiator
    /// is out of range, or if the initiator is marked as not participating.
    pub fn flood_with_participants(
        &self,
        cfg: &GlossyConfig,
        initiator: NodeId,
        start: SimTime,
        rng: &mut SimRng,
        participants: &[bool],
    ) -> FloodOutcome {
        let n = self.topology.num_nodes();
        assert_eq!(
            participants.len(),
            n,
            "participation mask must cover every node"
        );
        assert!(initiator.index() < n, "initiator out of range");
        assert!(
            participants[initiator.index()],
            "the initiator must participate in its own flood"
        );

        let slot_dur = cfg.relay_slot_duration();
        let airtime = cfg.packet_airtime();
        let max_slots = cfg.max_relay_slots().max(1);

        let mut states: Vec<NodeState> = (0..n)
            .map(|i| NodeState {
                participating: participants[i],
                has_packet: false,
                first_rx_slot: None,
                tx_remaining: 0,
                next_tx_slot: None,
                relays: 0,
                off_after_slot: if participants[i] { None } else { Some(0) },
            })
            .collect();

        // The initiator owns the packet from the start and always transmits
        // at least once, even under N_TX = 0.
        {
            let init = &mut states[initiator.index()];
            init.has_packet = true;
            init.first_rx_slot = Some(0);
            init.tx_remaining = cfg.ntx.for_node(initiator).max(1);
            init.next_tx_slot = Some(0);
        }

        let mut last_active_slot = 0usize;
        for slot in 0..max_slots {
            let slot_start = start + slot_dur * slot as u64;

            // Who transmits in this slot?
            let transmitters: Vec<NodeId> = (0..n)
                .map(|i| NodeId(i as u16))
                .filter(|id| {
                    let s = &states[id.index()];
                    s.participating
                        && s.off_after_slot.is_none()
                        && s.next_tx_slot == Some(slot)
                        && s.tx_remaining > 0
                })
                .collect();

            let anyone_active = states
                .iter()
                .any(|s| s.participating && s.off_after_slot.is_none());
            if !anyone_active {
                break;
            }
            last_active_slot = slot;

            // Receptions: every participating node that does not yet have the
            // packet and is not transmitting listens in this slot.
            if !transmitters.is_empty() {
                let concurrency_factor = if transmitters.len() > 1 {
                    (1.0 - cfg.concurrency_penalty * (transmitters.len() as f64 - 1.0)).max(0.5)
                } else {
                    1.0
                };
                // Indexed loop: the body re-borrows `states[i]` mutably on
                // reception, which rules out a plain iterator.
                #[allow(clippy::needless_range_loop)]
                for i in 0..n {
                    let receiver = NodeId(i as u16);
                    if transmitters.contains(&receiver) {
                        continue;
                    }
                    let s = &states[i];
                    if !s.participating || s.has_packet || s.off_after_slot.is_some() {
                        continue;
                    }
                    let mut miss_all = 1.0;
                    for &t in &transmitters {
                        miss_all *= 1.0 - self.topology.link(t, receiver).prr();
                    }
                    let busy = self.interference.busy_fraction(
                        slot_start,
                        airtime.as_micros(),
                        cfg.channel,
                        self.topology.position(receiver),
                    );
                    let p = (1.0 - miss_all) * concurrency_factor * (1.0 - busy);
                    if rng.chance(p) {
                        let ntx = cfg.ntx.for_node(receiver);
                        let st = &mut states[i];
                        st.has_packet = true;
                        st.first_rx_slot = Some(slot.min(u8::MAX as usize) as u8);
                        st.tx_remaining = ntx;
                        if ntx > 0 {
                            st.next_tx_slot = Some(slot + 1);
                        } else {
                            // Passive receiver: radio off right after this slot.
                            st.off_after_slot = Some(slot);
                        }
                    }
                }
            }

            // Advance the transmitters' schedules.
            for &t in &transmitters {
                let st = &mut states[t.index()];
                st.relays += 1;
                st.tx_remaining -= 1;
                if st.tx_remaining > 0 {
                    st.next_tx_slot = Some(slot + 2);
                } else {
                    st.next_tx_slot = None;
                    st.off_after_slot = Some(slot);
                }
            }
        }

        // Assemble per-node outcomes and radio accounting.
        let per_node: Vec<NodeFloodOutcome> = states
            .iter()
            .map(|s| {
                if !s.participating {
                    return NodeFloodOutcome::not_participating();
                }
                let mut radio = RadioAccounting::new();
                let on_time = match s.off_after_slot {
                    Some(k) => (slot_dur * (k as u64 + 1)).min(cfg.max_slot_duration),
                    // Never switched off: listened for the entire slot budget.
                    None => cfg.max_slot_duration,
                };
                let tx_time = (airtime * s.relays as u64).min(on_time);
                radio.record(RadioState::Tx, tx_time);
                radio.record(RadioState::Rx, on_time.saturating_sub(tx_time));
                NodeFloodOutcome {
                    received: s.has_packet,
                    first_rx_slot: s.first_rx_slot,
                    relays: s.relays,
                    radio,
                    participated: true,
                }
            })
            .collect();

        let duration = (slot_dur * (last_active_slot as u64 + 1)).min(cfg.max_slot_duration);
        FloodOutcome::new(initiator, per_node, duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimmer_sim::NoInterference;

    #[test]
    fn reference_reaches_everyone_on_a_calm_line() {
        let topo = Topology::line(5, 6.0, 1);
        let sim = ReferenceFloodSimulator::new(&topo, &NoInterference);
        let out = sim.flood(
            &GlossyConfig::default(),
            topo.coordinator(),
            SimTime::ZERO,
            &mut SimRng::seed_from(1),
        );
        assert_eq!(out.reach_count(), 5);
    }

    #[test]
    fn reference_is_deterministic_per_seed() {
        let topo = Topology::kiel_testbed_18(10);
        let sim = ReferenceFloodSimulator::new(&topo, &NoInterference);
        let cfg = GlossyConfig::default();
        let a = sim.flood(&cfg, NodeId(4), SimTime::ZERO, &mut SimRng::seed_from(77));
        let b = sim.flood(&cfg, NodeId(4), SimTime::ZERO, &mut SimRng::seed_from(77));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "initiator must participate")]
    fn reference_initiator_must_participate() {
        let topo = Topology::line(3, 6.0, 1);
        let sim = ReferenceFloodSimulator::new(&topo, &NoInterference);
        sim.flood_with_participants(
            &GlossyConfig::default(),
            NodeId(0),
            SimTime::ZERO,
            &mut SimRng::seed_from(1),
            &[false, true, true],
        );
    }
}
