//! # dimmer-rl — reinforcement-learning algorithms for Dimmer
//!
//! Dimmer frames self-adaptivity as *two* RL problems (§IV-A):
//!
//! 1. **Central adaptivity** — a deep Q-network executed by the coordinator
//!    chooses between *decrease / maintain / increase* for the global Glossy
//!    retransmission parameter `N_TX`. It is trained **offline** from
//!    unlabeled traces with experience replay, a target network, an
//!    epsilon-greedy policy annealed from 1.0 to 0.01, and a discount factor
//!    of 0.7 ([`DqnTrainer`], [`DqnConfig`]).
//! 2. **Distributed forwarder selection** — each device runs an *adversarial*
//!    two-armed bandit (Exp3, Auer et al. 2002) at runtime to learn whether
//!    it can become a passive receiver ([`Exp3`]).
//!
//! The [`Environment`] trait is the interface between the trainer and the
//! trace-based training environment provided by `dimmer-traces`.
//!
//! ## Example: Exp3 in an adversarial bandit
//!
//! ```
//! use dimmer_rl::Exp3;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut bandit = Exp3::new(2, 0.1);
//! let mut rng = StdRng::seed_from_u64(1);
//! for _ in 0..300 {
//!     let (arm, prob) = bandit.select_arm(&mut rng);
//!     let reward = if arm == 1 { 1.0 } else { 0.0 };
//!     bandit.update(arm, reward, prob);
//! }
//! assert!(bandit.probabilities()[1] > 0.7);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dqn;
pub mod env;
pub mod exp3;
pub mod farm;
pub mod replay;

pub use dqn::{DqnConfig, DqnTrainer};
pub use env::{Environment, Step};
pub use exp3::Exp3;
pub use farm::{train_farm, CurvePoint, FarmConfig, FarmRun};
pub use replay::{ReplayBuffer, Transition};
