//! Experience replay buffer.

use rand::rngs::StdRng;
use rand::Rng;

/// One recorded interaction with the environment.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// The state the action was taken in.
    pub state: Vec<f32>,
    /// The action that was taken.
    pub action: usize,
    /// The immediate reward received.
    pub reward: f32,
    /// The state observed afterwards.
    pub next_state: Vec<f32>,
    /// Whether the episode ended with this transition.
    pub done: bool,
}

/// A bounded ring buffer of [`Transition`]s with uniform random sampling.
///
/// # Examples
///
/// ```
/// use dimmer_rl::{ReplayBuffer, Transition};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut buf = ReplayBuffer::new(100);
/// for i in 0..10 {
///     buf.push(Transition {
///         state: vec![i as f32],
///         action: 0,
///         reward: 1.0,
///         next_state: vec![i as f32 + 1.0],
///         done: false,
///     });
/// }
/// let mut rng = StdRng::seed_from_u64(0);
/// assert_eq!(buf.sample(4, &mut rng).len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    entries: Vec<Transition>,
    write_index: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay buffer needs a positive capacity");
        ReplayBuffer {
            capacity,
            entries: Vec::with_capacity(capacity.min(4096)),
            write_index: 0,
        }
    }

    /// The maximum number of stored transitions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current number of stored transitions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no transitions are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds a transition, evicting the oldest one once the buffer is full.
    pub fn push(&mut self, transition: Transition) {
        if self.entries.len() < self.capacity {
            self.entries.push(transition);
        } else {
            self.entries[self.write_index] = transition;
        }
        self.write_index = (self.write_index + 1) % self.capacity;
    }

    /// Samples `count` transitions uniformly at random (with replacement).
    ///
    /// Returns fewer than `count` items only when the buffer is empty.
    pub fn sample<'a>(&'a self, count: usize, rng: &mut StdRng) -> Vec<&'a Transition> {
        if self.entries.is_empty() {
            return Vec::new();
        }
        (0..count)
            .map(|_| &self.entries[rng.gen_range(0..self.entries.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn t(v: f32) -> Transition {
        Transition {
            state: vec![v],
            action: 0,
            reward: v,
            next_state: vec![v + 1.0],
            done: false,
        }
    }

    #[test]
    fn push_grows_until_capacity_then_overwrites() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(t(i as f32));
        }
        assert_eq!(buf.len(), 3);
        // The oldest entries (0 and 1) were overwritten by 3 and 4.
        let rewards: Vec<f32> = buf.entries.iter().map(|e| e.reward).collect();
        assert!(rewards.contains(&2.0) && rewards.contains(&3.0) && rewards.contains(&4.0));
    }

    #[test]
    fn sample_is_empty_for_empty_buffer() {
        let buf = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(buf.sample(8, &mut rng).is_empty());
        assert!(buf.is_empty());
    }

    #[test]
    fn sample_returns_requested_count() {
        let mut buf = ReplayBuffer::new(10);
        buf.push(t(1.0));
        buf.push(t(2.0));
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(buf.sample(16, &mut rng).len(), 16);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_is_rejected() {
        ReplayBuffer::new(0);
    }

    proptest! {
        #[test]
        fn prop_len_never_exceeds_capacity(capacity in 1usize..50, pushes in 0usize..200) {
            let mut buf = ReplayBuffer::new(capacity);
            for i in 0..pushes {
                buf.push(t(i as f32));
            }
            prop_assert!(buf.len() <= capacity);
            prop_assert_eq!(buf.len(), pushes.min(capacity));
        }

        #[test]
        fn prop_samples_come_from_the_buffer(pushes in 1usize..50, samples in 1usize..50) {
            let mut buf = ReplayBuffer::new(64);
            for i in 0..pushes {
                buf.push(t(i as f32));
            }
            let mut rng = StdRng::seed_from_u64(7);
            for s in buf.sample(samples, &mut rng) {
                prop_assert!((s.reward as usize) < pushes);
            }
        }

        // The farm feeds one shared buffer from many environments; whatever
        // interleaving the rollout produces, the buffer must stay
        // capacity-correct (exactly the most recent `capacity` pushes
        // survive, FIFO eviction) ...
        #[test]
        fn prop_interleaved_env_pushes_stay_capacity_correct(
            capacity in 1usize..48,
            order in proptest::collection::vec(0usize..4, 0..150),
        ) {
            // `order[i]` names the environment that produced push `i`; the
            // transition id (stashed in `reward`) is the global push index.
            let mut buf = ReplayBuffer::new(capacity);
            for (i, _env) in order.iter().enumerate() {
                buf.push(t(i as f32));
            }
            prop_assert_eq!(buf.len(), order.len().min(capacity));
            let mut ids: Vec<usize> = buf.entries.iter().map(|e| e.reward as usize).collect();
            ids.sort_unstable();
            let expected: Vec<usize> =
                (order.len().saturating_sub(capacity)..order.len()).collect();
            prop_assert_eq!(ids, expected, "ring must keep exactly the newest pushes");
        }

        // ... and deterministic: replaying the same interleaving and
        // sampling with the same seed reproduces the identical batch.
        #[test]
        fn prop_push_sample_is_deterministic_per_seed(
            capacity in 1usize..48,
            order in proptest::collection::vec(0usize..4, 1..150),
            seed in 0u64..512,
            samples in 1usize..32,
        ) {
            let run = || {
                let mut buf = ReplayBuffer::new(capacity);
                for (i, env) in order.iter().enumerate() {
                    // Make the payload depend on the producing env too, so
                    // a hypothetical env-dependent code path would show up.
                    buf.push(t((i * 4 + env) as f32));
                }
                let mut rng = StdRng::seed_from_u64(seed);
                let batch: Vec<Transition> =
                    buf.sample(samples, &mut rng).into_iter().cloned().collect();
                batch
            };
            prop_assert_eq!(run(), run());
        }
    }
}
