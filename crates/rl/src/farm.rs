//! The vectorized in-sim training farm: N environments rolled out in
//! lockstep, one learner, byte-reproducible for any environment count.
//!
//! The farm turns the repo from "replays a checkpoint" into "manufactures
//! policies": it trains a [`DqnTrainer`] against any [`Environment`]
//! factory by rolling out **episodes** as the unit of parallel work.
//! Episode `e` is a pure function of the seed
//! `SimRng::derive_seed(root, &[EPISODE_STREAM, e])` — the environment is
//! rebuilt from the factory, reset from the episode's private RNG, and
//! driven by an *off-policy uniform-random behaviour policy* drawn from the
//! same RNG. Because no episode depends on the learner's evolving network,
//! batches of `envs` episodes can roll out concurrently, yet the learner
//! consumes their transitions in strict episode order through one shared
//! global transition counter ([`DqnTrainer::observe_at`]).
//!
//! The result is the same determinism contract the experiment harness
//! guarantees (`dimmer-bench::scheduler`): the trained weights and the
//! training curve are a pure function of `(factory, DqnConfig, FarmConfig
//! minus `envs`, seed)` — **independent of the environment count and of OS
//! scheduling**. `envs` is purely a rollout prefetch width.
//!
//! The seed derivation tree:
//!
//! ```text
//! root seed
//! ├── derive_seed(root, [0])            → the trainer (weights init, replay sampling)
//! ├── derive_seed(root, [1, e])         → episode e (env reset + behaviour actions)
//! └── derive_seed(root, [2, p, k])      → eval episode k of curve point p
//! ```
//!
//! Training-curve points are periodic *greedy* evaluations of the current
//! network on separately derived probe episodes; they never feed the replay
//! buffer, so observing the curve does not perturb training.

use crate::dqn::{DqnConfig, DqnTrainer};
use crate::env::Environment;
use crate::replay::Transition;
use dimmer_sim::SimRng;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Seed stream of the trainer itself (weight init + replay sampling).
const TRAINER_STREAM: u64 = 0;
/// Seed stream of training episodes.
const EPISODE_STREAM: u64 = 1;
/// Seed stream of greedy evaluation episodes.
const EVAL_STREAM: u64 = 2;

/// Farm-level knobs, orthogonal to the DQN hyper-parameters.
///
/// Everything except `envs` changes the result; `envs` only changes how
/// many episodes roll out concurrently (the trained weights and the curve
/// are byte-identical for any value — see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FarmConfig {
    /// Number of environments rolled out in lockstep (the worker count of
    /// each rollout batch). Result-invariant.
    pub envs: usize,
    /// Number of training-curve checkpoints, spread evenly over the run.
    pub curve_points: usize,
    /// Greedy probe episodes evaluated per checkpoint.
    pub eval_episodes: usize,
    /// Hard per-episode step cap, protecting against non-terminating
    /// environments. Episodes that reach the cap are truncated (their last
    /// transition keeps `done = false`).
    pub max_episode_steps: usize,
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            envs: 4,
            curve_points: 8,
            eval_episodes: 2,
            max_episode_steps: 512,
        }
    }
}

/// One training-curve checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CurvePoint {
    /// Global transition count at which the checkpoint was taken.
    pub transitions: usize,
    /// The epsilon schedule's value at the checkpoint (reported for the
    /// curve; the farm's behaviour policy itself is uniform-random).
    pub epsilon: f64,
    /// Mean TD loss over the training updates since the previous
    /// checkpoint (0.0 while still warming up).
    pub mean_loss: f64,
    /// Mean per-step reward of the greedy policy over the checkpoint's
    /// probe episodes.
    pub eval_reward: f64,
}

/// The outcome of one farm run: the trained agent plus its training curve.
#[derive(Debug, Clone)]
pub struct FarmRun {
    /// The trained agent (its online network is the product).
    pub trainer: DqnTrainer,
    /// Evaluation checkpoints, ascending by transition count; the last one
    /// sits at the final transition.
    pub curve: Vec<CurvePoint>,
    /// Number of episodes whose transitions were (at least partly)
    /// consumed by the learner.
    pub episodes: usize,
    /// Total transitions consumed (== `DqnConfig::training_iterations`).
    pub transitions: usize,
}

impl FarmRun {
    /// The greedy evaluation reward at the last checkpoint.
    pub fn final_eval(&self) -> f64 {
        self.curve.last().map(|p| p.eval_reward).unwrap_or(0.0)
    }
}

/// Trains a DQN against environments built by `factory`, rolling out
/// `farm.envs` episodes in lockstep, and returns the trained agent with its
/// training curve.
///
/// The output is byte-identical for any `farm.envs` and any OS scheduling
/// of the rollout workers (see the module docs for why).
///
/// # Panics
///
/// Panics if `dqn.training_iterations` is zero or any `FarmConfig` knob is
/// zero.
pub fn train_farm<E, F>(factory: &F, dqn: DqnConfig, farm: &FarmConfig, seed: u64) -> FarmRun
where
    E: Environment,
    F: Fn() -> E + Sync,
{
    assert!(dqn.training_iterations > 0, "nothing to train");
    assert!(farm.envs > 0, "need at least one environment");
    assert!(farm.curve_points > 0, "need at least one curve point");
    assert!(farm.eval_episodes > 0, "need at least one probe episode");
    assert!(farm.max_episode_steps > 0, "episodes must be able to step");

    let template = factory();
    let state_dim = template.state_dim();
    let num_actions = template.num_actions();
    drop(template);

    let total = dqn.training_iterations;
    let mut trainer = DqnTrainer::new(
        state_dim,
        num_actions,
        dqn,
        SimRng::derive_seed(seed, &[TRAINER_STREAM]),
    );

    // Checkpoint positions: `curve_points` marks spread evenly, the last
    // one exactly at `total` (duplicates collapse when points > total).
    let mut checkpoints: Vec<usize> = (1..=farm.curve_points)
        .map(|k| k * total / farm.curve_points)
        .filter(|&c| c > 0)
        .collect();
    checkpoints.dedup();

    let mut curve = Vec::with_capacity(checkpoints.len());
    let mut next_point = 0usize;
    let mut global = 0usize;
    let mut episodes = 0usize;
    let mut next_episode = 0u64;
    let mut loss_sum = 0.0f64;
    let mut loss_count = 0usize;

    'training: while global < total {
        // Roll out the next `envs` episodes concurrently; slot-ordered
        // collection keeps the result independent of worker scheduling.
        let first = next_episode;
        let batch = run_slots(farm.envs, farm.envs, |i| {
            rollout_episode(factory, seed, first + i as u64, farm.max_episode_steps)
        });
        next_episode += farm.envs as u64;

        for episode in batch {
            if global >= total {
                break 'training;
            }
            episodes += 1;
            for transition in episode {
                if global >= total {
                    break 'training;
                }
                global += 1;
                if let Some(loss) = trainer.observe_at(transition, global) {
                    loss_sum += loss as f64;
                    loss_count += 1;
                }
                while next_point < checkpoints.len() && global == checkpoints[next_point] {
                    let mean_loss = if loss_count == 0 {
                        0.0
                    } else {
                        loss_sum / loss_count as f64
                    };
                    let eval_reward = evaluate_greedy(
                        factory,
                        &trainer,
                        seed,
                        next_point as u64,
                        farm.eval_episodes,
                        farm.max_episode_steps,
                    );
                    curve.push(CurvePoint {
                        transitions: global,
                        epsilon: trainer.epsilon(),
                        mean_loss,
                        eval_reward,
                    });
                    loss_sum = 0.0;
                    loss_count = 0;
                    next_point += 1;
                }
            }
        }
    }

    FarmRun {
        trainer,
        curve,
        episodes,
        transitions: global,
    }
}

/// Rolls out episode `episode` with the uniform-random behaviour policy.
/// A pure function of `(factory, root, episode, cap)`.
fn rollout_episode<E, F>(factory: &F, root: u64, episode: u64, cap: usize) -> Vec<Transition>
where
    E: Environment,
    F: Fn() -> E,
{
    let mut env = factory();
    let mut rng = StdRng::seed_from_u64(SimRng::derive_seed(root, &[EPISODE_STREAM, episode]));
    let num_actions = env.num_actions();
    let mut state = env.reset(&mut rng);
    let mut out = Vec::new();
    for _ in 0..cap {
        let action = rng.gen_range(0..num_actions);
        let step = env.step(action, &mut rng);
        let done = step.done;
        out.push(Transition {
            state,
            action,
            reward: step.reward,
            next_state: step.next_state.clone(),
            done,
        });
        if done {
            break;
        }
        state = step.next_state;
    }
    out
}

/// Mean per-step reward of the trainer's greedy policy over `episodes`
/// probe episodes of curve point `point` (separate seed stream — probes
/// never touch training state).
fn evaluate_greedy<E, F>(
    factory: &F,
    trainer: &DqnTrainer,
    root: u64,
    point: u64,
    episodes: usize,
    cap: usize,
) -> f64
where
    E: Environment,
    F: Fn() -> E,
{
    let mut reward = 0.0f64;
    let mut steps = 0usize;
    for k in 0..episodes {
        let mut env = factory();
        let mut rng =
            StdRng::seed_from_u64(SimRng::derive_seed(root, &[EVAL_STREAM, point, k as u64]));
        let mut state = env.reset(&mut rng);
        for _ in 0..cap {
            let action = trainer.greedy_action(&state);
            let step = env.step(action, &mut rng);
            reward += step.reward as f64;
            steps += 1;
            if step.done {
                break;
            }
            state = step.next_state;
        }
    }
    if steps == 0 {
        0.0
    } else {
        reward / steps as f64
    }
}

/// Fans `jobs` indexed jobs out across `workers` threads and returns the
/// results **in job order** — the same slot-ordered pattern as
/// `dimmer-bench::scheduler::run_jobs`, reimplemented here because the
/// bench crate sits above this one in the dependency graph.
fn run_slots<R, F>(jobs: usize, workers: usize, run: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(jobs, || None);
    let results = Mutex::new(slots);
    let cursor = AtomicUsize::new(0);
    let workers = workers.max(1).min(jobs.max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let result = run(i);
                // lint: allow(P001) -- poisoned only if a job panicked; propagating is correct
                results.lock().expect("result store poisoned")[i] = Some(result);
            });
        }
    });

    // lint: allow(P001) -- poisoned only if a job panicked; propagating is correct
    let results = results.into_inner().expect("result store poisoned");
    results
        .into_iter()
        .map(|slot| {
            // lint: allow(P001) -- the scope joins every worker, so all slots are filled
            slot.expect("every job slot is filled after the scope joins")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_envs::{ChainWalk, ContextualBandit};
    use dimmer_neural::serialize::to_text;

    fn quick_cfg(iterations: usize) -> DqnConfig {
        DqnConfig {
            warmup_transitions: 32,
            target_sync_interval: 64,
            replay_capacity: 512,
            ..DqnConfig::quick().with_iterations(iterations)
        }
    }

    #[test]
    fn farm_output_is_invariant_in_the_environment_count() {
        let factory = || ContextualBandit::new(3);
        let run_with = |envs: usize| {
            let farm = FarmConfig {
                envs,
                curve_points: 4,
                eval_episodes: 2,
                max_episode_steps: 16,
            };
            train_farm(&factory, quick_cfg(600), &farm, 42)
        };
        let one = run_with(1);
        let four = run_with(4);
        let nine = run_with(9);
        assert_eq!(one.curve, four.curve, "curve depends on env count");
        assert_eq!(one.curve, nine.curve, "curve depends on env count");
        assert_eq!(one.episodes, four.episodes);
        assert_eq!(one.transitions, nine.transitions);
        let w1 = to_text(one.trainer.policy());
        assert_eq!(w1, to_text(four.trainer.policy()), "weights diverged");
        assert_eq!(w1, to_text(nine.trainer.policy()), "weights diverged");
    }

    #[test]
    fn farm_learns_the_contextual_bandit_off_policy() {
        let factory = || ContextualBandit::new(3);
        let farm = FarmConfig {
            envs: 4,
            curve_points: 4,
            eval_episodes: 4,
            max_episode_steps: 8,
        };
        let run = train_farm(&factory, quick_cfg(4_000), &farm, 7);
        assert!(
            run.final_eval() > 0.9,
            "greedy eval should approach 1.0, got {}",
            run.final_eval()
        );
        for c in 0..3 {
            let mut state = vec![0.0; 3];
            state[c] = 1.0;
            assert_eq!(run.trainer.greedy_action(&state), c, "context {c}");
        }
    }

    #[test]
    fn farm_handles_multi_step_episodes_and_stays_env_count_invariant() {
        let factory = || ChainWalk::new(4);
        let run_with = |envs: usize| {
            let farm = FarmConfig {
                envs,
                curve_points: 3,
                eval_episodes: 2,
                max_episode_steps: 24,
            };
            train_farm(&factory, quick_cfg(900), &farm, 11)
        };
        let one = run_with(1);
        let eight = run_with(8);
        assert_eq!(one.curve, eight.curve, "curve depends on env count");
        assert_eq!(
            to_text(one.trainer.policy()),
            to_text(eight.trainer.policy()),
            "weights diverged"
        );
        // Multi-step episodes: strictly more transitions than episodes.
        assert!(one.transitions > one.episodes);
    }

    #[test]
    fn curve_checkpoints_cover_the_run_and_end_at_the_total() {
        let factory = || ContextualBandit::new(2);
        let farm = FarmConfig {
            envs: 2,
            curve_points: 5,
            eval_episodes: 1,
            max_episode_steps: 4,
        };
        let run = train_farm(&factory, quick_cfg(500), &farm, 3);
        assert_eq!(run.curve.len(), 5);
        assert_eq!(run.curve.last().map(|p| p.transitions), Some(500));
        assert!(run
            .curve
            .windows(2)
            .all(|w| w[0].transitions < w[1].transitions));
        assert_eq!(run.transitions, 500);
        assert!(run.episodes > 0);
    }

    #[test]
    fn run_slots_is_order_stable_for_any_worker_count() {
        for workers in [1, 2, 8, 64] {
            let out = run_slots(12, workers, |i| i * 3);
            assert_eq!(out, (0..12).map(|i| i * 3).collect::<Vec<_>>());
        }
        assert!(run_slots(0, 4, |i| i).is_empty());
    }
}
