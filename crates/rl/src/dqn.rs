//! Deep Q-network training with experience replay and a target network.
//!
//! The hyper-parameters follow §IV-B of the paper: one hidden layer of 30
//! ReLU neurons, 200 000 training iterations, an epsilon-greedy policy whose
//! random-action probability is annealed linearly from 100 % to 1 % over the
//! first 100 000 steps and held at 1 % afterwards, and a discount factor
//! γ = 0.7.

use crate::env::Environment;
use crate::replay::{ReplayBuffer, Transition};
use dimmer_neural::Mlp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of the DQN trainer.
///
/// # Examples
///
/// ```
/// use dimmer_rl::DqnConfig;
/// let cfg = DqnConfig::paper_default();
/// assert_eq!(cfg.hidden_neurons, 30);
/// assert_eq!(cfg.discount, 0.7);
/// assert_eq!(cfg.training_iterations, 200_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DqnConfig {
    /// Width of the single hidden layer.
    pub hidden_neurons: usize,
    /// Discount factor γ.
    pub discount: f32,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Capacity of the experience replay buffer.
    pub replay_capacity: usize,
    /// Number of transitions sampled per training step.
    pub batch_size: usize,
    /// Minimum number of stored transitions before training starts.
    pub warmup_transitions: usize,
    /// How many environment steps between target-network synchronizations.
    pub target_sync_interval: usize,
    /// Initial random-action probability.
    pub epsilon_start: f64,
    /// Final random-action probability.
    pub epsilon_end: f64,
    /// Number of steps over which epsilon is annealed linearly.
    pub epsilon_decay_steps: usize,
    /// Total number of environment interactions during training.
    pub training_iterations: usize,
}

impl DqnConfig {
    /// The configuration used in the paper (§IV-B).
    pub fn paper_default() -> Self {
        DqnConfig {
            hidden_neurons: 30,
            discount: 0.7,
            learning_rate: 0.001,
            replay_capacity: 20_000,
            batch_size: 16,
            warmup_transitions: 500,
            target_sync_interval: 500,
            epsilon_start: 1.0,
            epsilon_end: 0.01,
            epsilon_decay_steps: 100_000,
            training_iterations: 200_000,
        }
    }

    /// A scaled-down configuration for unit tests and quick examples.
    pub fn quick() -> Self {
        DqnConfig {
            replay_capacity: 4_000,
            warmup_transitions: 64,
            target_sync_interval: 200,
            epsilon_decay_steps: 3_000,
            training_iterations: 6_000,
            learning_rate: 0.005,
            ..Self::paper_default()
        }
    }

    /// Overrides the number of training iterations.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.training_iterations = iterations;
        self.epsilon_decay_steps = (iterations / 2).max(1);
        self
    }
}

impl Default for DqnConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A DQN agent: online network, target network, replay buffer and an
/// epsilon-greedy behaviour policy.
///
/// # Examples
///
/// Training on a synthetic environment:
///
/// ```
/// use dimmer_rl::{DqnConfig, DqnTrainer, Environment, Step};
/// use rand::rngs::StdRng;
///
/// struct AlwaysZero;
/// impl Environment for AlwaysZero {
///     fn state_dim(&self) -> usize { 1 }
///     fn num_actions(&self) -> usize { 2 }
///     fn reset(&mut self, _rng: &mut StdRng) -> Vec<f32> { vec![0.0] }
///     fn step(&mut self, action: usize, _rng: &mut StdRng) -> Step {
///         Step { next_state: vec![0.0], reward: if action == 0 { 1.0 } else { 0.0 }, done: true }
///     }
/// }
///
/// let cfg = DqnConfig::quick().with_iterations(2_000);
/// let mut trainer = DqnTrainer::new(1, 2, cfg, 42);
/// let mut env = AlwaysZero;
/// trainer.train(&mut env);
/// assert_eq!(trainer.greedy_action(&[0.0]), 0);
/// ```
#[derive(Debug, Clone)]
pub struct DqnTrainer {
    online: Mlp,
    target: Mlp,
    replay: ReplayBuffer,
    config: DqnConfig,
    rng: StdRng,
    steps: usize,
}

impl DqnTrainer {
    /// Creates a trainer for an environment with `state_dim` inputs and
    /// `num_actions` discrete actions.
    ///
    /// # Panics
    ///
    /// Panics if `state_dim` or `num_actions` is zero.
    pub fn new(state_dim: usize, num_actions: usize, config: DqnConfig, seed: u64) -> Self {
        assert!(
            state_dim > 0 && num_actions > 0,
            "state and action spaces must be non-empty"
        );
        let online = Mlp::new(&[state_dim, config.hidden_neurons, num_actions], seed);
        let target = online.clone();
        let replay = ReplayBuffer::new(config.replay_capacity);
        DqnTrainer {
            online,
            target,
            replay,
            config,
            rng: StdRng::seed_from_u64(seed ^ 0xD9),
            steps: 0,
        }
    }

    /// The current exploration rate, annealed linearly from
    /// `epsilon_start` to `epsilon_end` over `epsilon_decay_steps`.
    pub fn epsilon(&self) -> f64 {
        let cfg = &self.config;
        if self.steps >= cfg.epsilon_decay_steps {
            cfg.epsilon_end
        } else {
            let progress = self.steps as f64 / cfg.epsilon_decay_steps as f64;
            cfg.epsilon_start + (cfg.epsilon_end - cfg.epsilon_start) * progress
        }
    }

    /// Number of environment interactions performed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &DqnConfig {
        &self.config
    }

    /// The greedy action of the online network for `state`.
    pub fn greedy_action(&self, state: &[f32]) -> usize {
        self.online.argmax(state)
    }

    /// Chooses an action epsilon-greedily for `state`.
    pub fn select_action(&mut self, state: &[f32]) -> usize {
        if self.rng.gen::<f64>() < self.epsilon() {
            self.rng.gen_range(0..self.online.num_outputs())
        } else {
            self.online.argmax(state)
        }
    }

    /// Records a transition and performs one training update (if the warm-up
    /// threshold has been reached). Returns the mean TD loss of the batch, or
    /// `None` while still warming up.
    ///
    /// Equivalent to [`observe_at`](Self::observe_at) with the trainer's own
    /// step count plus one — the single-environment special case.
    pub fn observe(&mut self, transition: Transition) -> Option<f32> {
        self.observe_at(transition, self.steps + 1)
    }

    /// Records a transition under an externally driven **global transition
    /// counter** and performs one training update (if the warm-up threshold
    /// has been reached). Returns the mean TD loss of the batch, or `None`
    /// while still warming up.
    ///
    /// The epsilon schedule and the target-network synchronization are both
    /// clocked by `global_transitions` — the 1-based count of transitions
    /// observed so far across *every* environment feeding this trainer. A
    /// vectorized trainer (the farm) passes its own counter so the schedules
    /// follow the global transition order no matter how transitions are
    /// batched across environments; counting per trainer instead would skew
    /// both schedules under vectorized batching.
    ///
    /// Counters must be fed in ascending order; [`steps`](Self::steps)
    /// reports the last counter value seen.
    pub fn observe_at(&mut self, transition: Transition, global_transitions: usize) -> Option<f32> {
        self.replay.push(transition);
        self.steps = global_transitions;
        if self.steps.is_multiple_of(self.config.target_sync_interval) {
            self.target = self.online.clone();
        }
        if self.replay.len() < self.config.warmup_transitions {
            return None;
        }
        let batch: Vec<Transition> = self
            .replay
            .sample(self.config.batch_size, &mut self.rng)
            .into_iter()
            .cloned()
            .collect();
        let mut loss = 0.0;
        for t in &batch {
            let target_value = if t.done {
                t.reward
            } else {
                let next_q = self.target.forward(&t.next_state);
                let max_next = next_q.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                t.reward + self.config.discount * max_next
            };
            loss += self.online.train_single_output(
                &t.state,
                t.action,
                target_value,
                self.config.learning_rate,
            );
        }
        Some(loss / batch.len() as f32)
    }

    /// Runs the full training loop against `env` for
    /// `config.training_iterations` environment steps. Returns the average
    /// reward per step over the final 10 % of training (a convergence
    /// indicator).
    pub fn train<E: Environment>(&mut self, env: &mut E) -> f32 {
        assert_eq!(
            env.state_dim(),
            self.online.num_inputs(),
            "environment/agent state mismatch"
        );
        assert_eq!(
            env.num_actions(),
            self.online.num_outputs(),
            "environment/agent action mismatch"
        );
        let mut env_rng = StdRng::seed_from_u64(self.rng.gen());
        let mut state = env.reset(&mut env_rng);
        let tail_start = self.config.training_iterations * 9 / 10;
        let mut tail_reward = 0.0f32;
        let mut tail_count = 0usize;
        for it in 0..self.config.training_iterations {
            let action = self.select_action(&state);
            let step = env.step(action, &mut env_rng);
            if it >= tail_start {
                tail_reward += step.reward;
                tail_count += 1;
            }
            self.observe(Transition {
                state: state.clone(),
                action,
                reward: step.reward,
                next_state: step.next_state.clone(),
                done: step.done,
            });
            state = if step.done {
                env.reset(&mut env_rng)
            } else {
                step.next_state
            };
        }
        if tail_count == 0 {
            0.0
        } else {
            tail_reward / tail_count as f32
        }
    }

    /// Borrows the online (policy) network.
    pub fn policy(&self) -> &Mlp {
        &self.online
    }

    /// Consumes the trainer and returns the trained policy network.
    pub fn into_policy(self) -> Mlp {
        self.online
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_envs::{ChainWalk, ContextualBandit};
    use rand::SeedableRng;

    #[test]
    fn epsilon_anneals_linearly_then_clamps() {
        let cfg = DqnConfig {
            epsilon_decay_steps: 100,
            ..DqnConfig::quick()
        };
        let mut trainer = DqnTrainer::new(2, 2, cfg, 0);
        assert!((trainer.epsilon() - 1.0).abs() < 1e-9);
        for _ in 0..50 {
            trainer.observe(Transition {
                state: vec![0.0, 0.0],
                action: 0,
                reward: 0.0,
                next_state: vec![0.0, 0.0],
                done: true,
            });
        }
        let halfway = trainer.epsilon();
        assert!(
            halfway < 0.6 && halfway > 0.4,
            "epsilon at halfway: {halfway}"
        );
        for _ in 0..200 {
            trainer.observe(Transition {
                state: vec![0.0, 0.0],
                action: 0,
                reward: 0.0,
                next_state: vec![0.0, 0.0],
                done: true,
            });
        }
        assert!((trainer.epsilon() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn dqn_solves_a_contextual_bandit() {
        let mut env = ContextualBandit::new(3);
        let cfg = DqnConfig::quick().with_iterations(8_000);
        let mut trainer = DqnTrainer::new(3, 3, cfg, 7);
        let tail = trainer.train(&mut env);
        assert!(
            tail > 0.85,
            "average tail reward should be close to 1.0, got {tail}"
        );
        // Greedy policy picks the matching action for every context.
        for c in 0..3 {
            let mut state = vec![0.0; 3];
            state[c] = 1.0;
            assert_eq!(trainer.greedy_action(&state), c, "context {c}");
        }
    }

    #[test]
    fn dqn_learns_multi_step_credit_assignment_on_a_chain() {
        let mut env = ChainWalk::new(4);
        let cfg = DqnConfig::quick().with_iterations(12_000);
        let mut trainer = DqnTrainer::new(4, 2, cfg, 3);
        trainer.train(&mut env);
        // In every non-terminal cell the greedy action must be "move right".
        for pos in 0..3 {
            let mut state = vec![0.0; 4];
            state[pos] = 1.0;
            assert_eq!(trainer.greedy_action(&state), 1, "cell {pos}");
        }
    }

    #[test]
    fn observe_returns_loss_only_after_warmup() {
        let cfg = DqnConfig {
            warmup_transitions: 10,
            ..DqnConfig::quick()
        };
        let mut trainer = DqnTrainer::new(1, 2, cfg, 1);
        let t = Transition {
            state: vec![0.5],
            action: 1,
            reward: 1.0,
            next_state: vec![0.5],
            done: false,
        };
        for i in 0..9 {
            assert!(
                trainer.observe(t.clone()).is_none(),
                "no training before warmup (step {i})"
            );
        }
        assert!(trainer.observe(t).is_some());
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let run = |seed| {
            let mut env = ContextualBandit::new(2);
            let mut trainer =
                DqnTrainer::new(2, 2, DqnConfig::quick().with_iterations(2_000), seed);
            trainer.train(&mut env);
            trainer.policy().forward(&[1.0, 0.0])
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn select_action_is_random_under_full_exploration() {
        let cfg = DqnConfig {
            epsilon_start: 1.0,
            epsilon_end: 1.0,
            ..DqnConfig::quick()
        };
        let mut trainer = DqnTrainer::new(2, 4, cfg, 9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[trainer.select_action(&[0.0, 0.0])] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all actions should be explored: {seen:?}"
        );
    }

    #[test]
    #[should_panic(expected = "state and action spaces")]
    fn zero_sized_spaces_are_rejected() {
        DqnTrainer::new(0, 2, DqnConfig::quick(), 0);
    }

    /// A deterministic stream of toy transitions for the counter tests.
    fn transition_stream(n: usize) -> Vec<Transition> {
        (0..n)
            .map(|i| Transition {
                state: vec![(i % 7) as f32 / 7.0],
                action: i % 2,
                reward: if i % 3 == 0 { 1.0 } else { 0.0 },
                next_state: vec![((i + 1) % 7) as f32 / 7.0],
                done: i % 5 == 4,
            })
            .collect()
    }

    #[test]
    fn observe_is_the_sequential_case_of_observe_at() {
        // Single-env regression: `observe` must stay bit-identical to
        // driving `observe_at` with a sequential 1-based counter.
        let cfg = DqnConfig {
            warmup_transitions: 16,
            target_sync_interval: 32,
            epsilon_decay_steps: 100,
            ..DqnConfig::quick()
        };
        let mut a = DqnTrainer::new(1, 2, cfg.clone(), 11);
        let mut b = DqnTrainer::new(1, 2, cfg, 11);
        for (i, t) in transition_stream(200).into_iter().enumerate() {
            let la = a.observe(t.clone());
            let lb = b.observe_at(t, i + 1);
            assert_eq!(la, lb, "loss diverged at step {i}");
        }
        assert_eq!(a.steps(), b.steps());
        assert_eq!(a.epsilon(), b.epsilon());
        assert_eq!(a.policy().forward(&[0.5]), b.policy().forward(&[0.5]));
    }

    #[test]
    fn global_counter_schedule_is_independent_of_env_attribution() {
        // Vectorized regression: the same global transition stream fed
        // through one shared counter produces the same epsilon / target-sync
        // schedule regardless of which environment each transition came
        // from (the counter is global, not per-trainer-per-env).
        let cfg = DqnConfig {
            warmup_transitions: 16,
            target_sync_interval: 32,
            epsilon_decay_steps: 100,
            ..DqnConfig::quick()
        };
        let stream = transition_stream(128);
        // "Two envs, interleaved": attribution alternates, but the farm
        // feeds one global counter.
        let mut farm = DqnTrainer::new(1, 2, cfg.clone(), 5);
        let mut global = 0usize;
        for t in &stream {
            global += 1;
            farm.observe_at(t.clone(), global);
        }
        // Reference: the plain single-env path over the identical stream.
        let mut single = DqnTrainer::new(1, 2, cfg, 5);
        for t in &stream {
            single.observe(t.clone());
        }
        assert_eq!(farm.steps(), single.steps());
        assert_eq!(farm.epsilon(), single.epsilon());
        assert_eq!(
            farm.policy().forward(&[0.25]),
            single.policy().forward(&[0.25])
        );
    }

    #[test]
    fn paper_default_matches_section_iv_b() {
        let cfg = DqnConfig::paper_default();
        assert_eq!(cfg.training_iterations, 200_000);
        assert_eq!(cfg.epsilon_decay_steps, 100_000);
        assert!((cfg.epsilon_start - 1.0).abs() < 1e-12);
        assert!((cfg.epsilon_end - 0.01).abs() < 1e-12);
        assert!((cfg.discount - 0.7).abs() < 1e-12);
        let _ = StdRng::seed_from_u64(0);
    }
}
