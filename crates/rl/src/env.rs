//! The environment abstraction consumed by the DQN trainer.

use rand::rngs::StdRng;

/// The result of taking one action in an [`Environment`].
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The state observed after the action.
    pub next_state: Vec<f32>,
    /// The immediate reward.
    pub reward: f32,
    /// Whether the episode ended with this transition.
    pub done: bool,
}

/// A Markov decision process the agent can interact with.
///
/// Dimmer's training environment replays recorded traces (`dimmer-traces`),
/// but the trait is generic so tests can plug in synthetic MDPs.
pub trait Environment {
    /// Dimensionality of the state vector.
    fn state_dim(&self) -> usize;

    /// Number of discrete actions.
    fn num_actions(&self) -> usize;

    /// Starts a new episode and returns the initial state.
    fn reset(&mut self, rng: &mut StdRng) -> Vec<f32>;

    /// Applies `action` and returns the resulting transition.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `action >= num_actions()`.
    fn step(&mut self, action: usize, rng: &mut StdRng) -> Step;
}

#[cfg(test)]
pub(crate) mod test_envs {
    //! Small synthetic environments used by the crate's unit tests.

    use super::*;
    use rand::Rng;

    /// A contextual bandit: the state is a one-hot context of size `n`, and
    /// the rewarded action equals the context index. Episodes last one step.
    #[derive(Debug, Clone)]
    pub struct ContextualBandit {
        pub contexts: usize,
        current: usize,
    }

    impl ContextualBandit {
        pub fn new(contexts: usize) -> Self {
            ContextualBandit {
                contexts,
                current: 0,
            }
        }

        fn encode(&self) -> Vec<f32> {
            let mut v = vec![0.0; self.contexts];
            v[self.current] = 1.0;
            v
        }
    }

    impl Environment for ContextualBandit {
        fn state_dim(&self) -> usize {
            self.contexts
        }
        fn num_actions(&self) -> usize {
            self.contexts
        }
        fn reset(&mut self, rng: &mut StdRng) -> Vec<f32> {
            self.current = rng.gen_range(0..self.contexts);
            self.encode()
        }
        fn step(&mut self, action: usize, rng: &mut StdRng) -> Step {
            assert!(action < self.contexts);
            let reward = if action == self.current { 1.0 } else { 0.0 };
            self.current = rng.gen_range(0..self.contexts);
            Step {
                next_state: self.encode(),
                reward,
                done: true,
            }
        }
    }

    /// A deterministic 1-D chain of `n` cells: action 1 moves right, action 0
    /// moves left; reaching the right end yields +1 and terminates, so the
    /// optimal policy is "always move right" and requires credit assignment
    /// across several steps.
    #[derive(Debug, Clone)]
    pub struct ChainWalk {
        pub length: usize,
        position: usize,
        steps: usize,
    }

    impl ChainWalk {
        pub fn new(length: usize) -> Self {
            ChainWalk {
                length,
                position: 0,
                steps: 0,
            }
        }

        fn encode(&self) -> Vec<f32> {
            let mut v = vec![0.0; self.length];
            v[self.position] = 1.0;
            v
        }
    }

    impl Environment for ChainWalk {
        fn state_dim(&self) -> usize {
            self.length
        }
        fn num_actions(&self) -> usize {
            2
        }
        fn reset(&mut self, _rng: &mut StdRng) -> Vec<f32> {
            self.position = 0;
            self.steps = 0;
            self.encode()
        }
        fn step(&mut self, action: usize, _rng: &mut StdRng) -> Step {
            assert!(action < 2);
            self.steps += 1;
            if action == 1 {
                self.position = (self.position + 1).min(self.length - 1);
            } else {
                self.position = self.position.saturating_sub(1);
            }
            let done = self.position == self.length - 1 || self.steps >= 4 * self.length;
            let reward = if self.position == self.length - 1 {
                1.0
            } else {
                -0.01
            };
            Step {
                next_state: self.encode(),
                reward,
                done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_envs::*;
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn contextual_bandit_rewards_matching_action() {
        let mut env = ContextualBandit::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        let state = env.reset(&mut rng);
        let context = state.iter().position(|&x| x == 1.0).unwrap();
        let step = env.step(context, &mut rng);
        assert_eq!(step.reward, 1.0);
        assert!(step.done);
    }

    #[test]
    fn chain_walk_reaches_goal_with_right_moves() {
        let mut env = ChainWalk::new(5);
        let mut rng = StdRng::seed_from_u64(0);
        env.reset(&mut rng);
        let mut last = Step {
            next_state: vec![],
            reward: 0.0,
            done: false,
        };
        for _ in 0..4 {
            last = env.step(1, &mut rng);
        }
        assert!(last.done);
        assert_eq!(last.reward, 1.0);
    }

    #[test]
    fn chain_walk_times_out_when_moving_left() {
        let mut env = ChainWalk::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        env.reset(&mut rng);
        let mut steps = 0;
        loop {
            let s = env.step(0, &mut rng);
            steps += 1;
            if s.done {
                break;
            }
        }
        assert_eq!(steps, 16, "episode must terminate via the step limit");
    }
}
