//! Exp3 — exponential-weight algorithm for adversarial multi-armed bandits
//! (Auer, Cesa-Bianchi, Freund, Schapire; SIAM J. Comput. 2002).
//!
//! Dimmer uses a two-armed Exp3 instance per device for forwarder selection:
//! arm 0 = *active forwarder*, arm 1 = *passive receiver*. The environment is
//! adversarial from each device's point of view (other devices' decisions and
//! the interference affect the reward), which is why UCB-style stochastic
//! bandits are unsuitable (§IV-C).

use rand::rngs::StdRng;
use rand::Rng;

/// An Exp3 bandit over `K` arms.
///
/// Arm selection follows Eq. 2 of the paper:
/// `p_i(t) = (1 − γ) · w_i(t) / Σ_j w_j(t) + γ / K`,
/// and after receiving reward `r` for arm `i` drawn with probability `p_i`,
/// the weight is updated as `w_i ← w_i · exp(γ · r / (K · p_i))`.
///
/// # Examples
///
/// ```
/// use dimmer_rl::Exp3;
/// let bandit = Exp3::new(2, 0.1);
/// let p = bandit.probabilities();
/// assert!((p[0] - 0.5).abs() < 1e-9);
/// assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Exp3 {
    weights: Vec<f64>,
    gamma: f64,
    initial_weight: f64,
}

impl Exp3 {
    /// Upper bound on weights to keep the exponential update numerically
    /// stable over long runs.
    const MAX_WEIGHT: f64 = 1e12;

    /// Creates a bandit with `arms` arms and exploration factor `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `arms == 0` or `gamma` is outside `(0, 1]`.
    pub fn new(arms: usize, gamma: f64) -> Self {
        assert!(arms > 0, "need at least one arm");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        Exp3 {
            weights: vec![1.0; arms],
            gamma,
            initial_weight: 1.0,
        }
    }

    /// Number of arms.
    pub fn num_arms(&self) -> usize {
        self.weights.len()
    }

    /// The exploration factor γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Current selection probabilities (Eq. 2).
    pub fn probabilities(&self) -> Vec<f64> {
        let total: f64 = self.weights.iter().sum();
        let k = self.weights.len() as f64;
        self.weights
            .iter()
            .map(|w| (1.0 - self.gamma) * (w / total) + self.gamma / k)
            .collect()
    }

    /// Draws an arm according to the current probabilities; returns the arm
    /// and the probability it was drawn with (needed for the update).
    pub fn select_arm(&self, rng: &mut StdRng) -> (usize, f64) {
        let probs = self.probabilities();
        let mut target: f64 = rng.gen();
        for (i, p) in probs.iter().enumerate() {
            if target < *p {
                return (i, *p);
            }
            target -= p;
        }
        let last = probs.len() - 1;
        (last, probs[last])
    }

    /// Updates the chosen arm's weight after observing `reward ∈ [0, 1]`
    /// drawn with probability `probability`.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range or `probability` is not positive.
    pub fn update(&mut self, arm: usize, reward: f64, probability: f64) {
        assert!(arm < self.weights.len(), "arm out of range");
        assert!(probability > 0.0, "selection probability must be positive");
        let reward = reward.clamp(0.0, 1.0);
        let k = self.weights.len() as f64;
        let estimated = reward / probability;
        let factor = (self.gamma * estimated / k).exp();
        self.weights[arm] = (self.weights[arm] * factor).min(Self::MAX_WEIGHT);
    }

    /// Resets one arm's weight to its initial value.
    ///
    /// Dimmer uses this to punish network-breaking configurations: when a
    /// passive decision broke connectivity, the passive arm is reinitialized
    /// so the bad configuration is unlikely to be re-entered (§IV-C).
    pub fn reset_arm(&mut self, arm: usize) {
        assert!(arm < self.weights.len(), "arm out of range");
        self.weights[arm] = self.initial_weight;
    }

    /// Resets every arm.
    pub fn reset(&mut self) {
        for w in &mut self.weights {
            *w = self.initial_weight;
        }
    }

    /// The arm with the largest weight (the current greedy choice).
    pub fn best_arm(&self) -> usize {
        self.weights
            .iter()
            .enumerate()
            // lint: allow(P001) -- update() renormalizes and clamps, so weights stay finite
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite weights"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn initial_probabilities_are_uniform() {
        let b = Exp3::new(4, 0.2);
        for p in b.probabilities() {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn rewarding_one_arm_shifts_probability_mass() {
        let mut b = Exp3::new(2, 0.1);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let (arm, p) = b.select_arm(&mut rng);
            let reward = if arm == 0 { 1.0 } else { 0.0 };
            b.update(arm, reward, p);
        }
        let probs = b.probabilities();
        assert!(probs[0] > 0.8, "good arm probability {}", probs[0]);
        assert_eq!(b.best_arm(), 0);
    }

    #[test]
    fn exploration_floor_is_maintained() {
        let mut b = Exp3::new(2, 0.2);
        for _ in 0..500 {
            b.update(0, 1.0, 0.5);
        }
        let probs = b.probabilities();
        // Even a hopeless arm keeps γ/K probability.
        assert!(probs[1] >= 0.2 / 2.0 - 1e-12);
    }

    #[test]
    fn adversarial_switch_is_tracked() {
        let mut b = Exp3::new(2, 0.3);
        let mut rng = StdRng::seed_from_u64(11);
        // Phase 1: arm 0 is good.
        for _ in 0..150 {
            let (arm, p) = b.select_arm(&mut rng);
            b.update(arm, if arm == 0 { 1.0 } else { 0.0 }, p);
        }
        assert_eq!(b.best_arm(), 0);
        // Phase 2: the adversary flips the reward structure.
        for _ in 0..600 {
            let (arm, p) = b.select_arm(&mut rng);
            b.update(arm, if arm == 1 { 1.0 } else { 0.0 }, p);
        }
        assert_eq!(b.best_arm(), 1, "Exp3 must adapt to the adversarial switch");
    }

    #[test]
    fn reset_arm_restores_initial_weight() {
        let mut b = Exp3::new(2, 0.1);
        for _ in 0..50 {
            b.update(1, 1.0, 0.5);
        }
        assert_eq!(b.best_arm(), 1);
        b.reset_arm(1);
        let probs = b.probabilities();
        assert!(
            (probs[0] - probs[1]).abs() < 1e-9,
            "reset should level the arms again"
        );
    }

    #[test]
    fn weights_stay_bounded_under_long_runs() {
        let mut b = Exp3::new(2, 0.5);
        for _ in 0..100_000 {
            b.update(0, 1.0, 0.26);
        }
        let probs = b.probabilities();
        assert!(probs.iter().all(|p| p.is_finite()));
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "gamma must be in (0, 1]")]
    fn invalid_gamma_is_rejected() {
        Exp3::new(2, 0.0);
    }

    #[test]
    #[should_panic(expected = "arm out of range")]
    fn update_rejects_unknown_arm() {
        let mut b = Exp3::new(2, 0.1);
        b.update(5, 1.0, 0.5);
    }

    proptest! {
        #[test]
        fn prop_probabilities_always_sum_to_one(updates in proptest::collection::vec((0usize..2, 0.0f64..1.0), 0..200)) {
            let mut b = Exp3::new(2, 0.1);
            for (arm, reward) in updates {
                let p = b.probabilities()[arm];
                b.update(arm, reward, p);
            }
            let probs = b.probabilities();
            prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for p in probs {
                prop_assert!(p > 0.0 && p < 1.0);
            }
        }

        #[test]
        fn prop_selected_arm_is_valid(seed in 0u64..200, arms in 1usize..6) {
            let b = Exp3::new(arms, 0.15);
            let mut rng = StdRng::seed_from_u64(seed);
            let (arm, p) = b.select_arm(&mut rng);
            prop_assert!(arm < arms);
            prop_assert!(p > 0.0 && p <= 1.0);
        }

        // The invariant the zoo's meta-controller leans on: after ANY
        // reward sequence in [0, 1] — importance-weighted through the
        // arm's own selection probability, as in real operation — the
        // distribution stays normalized and every arm keeps at least the
        // γ/K exploration floor, so no specialist is ever starved.
        #[test]
        fn prop_any_reward_sequence_keeps_the_distribution_normalized_and_floored(
            arms in 1usize..6,
            gamma in 0.01f64..=1.0,
            rewards in proptest::collection::vec(0.0f64..=1.0, 0..120),
            seed in 0u64..256,
        ) {
            let mut b = Exp3::new(arms, gamma);
            let mut rng = StdRng::seed_from_u64(seed);
            let floor = gamma / arms as f64;
            for reward in rewards {
                let (arm, p) = b.select_arm(&mut rng);
                b.update(arm, reward, p);
                let probs = b.probabilities();
                prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                for p in probs {
                    prop_assert!(p.is_finite() && p > 0.0, "arm probability must stay positive");
                    prop_assert!(p >= floor - 1e-12, "probability {p} fell below the γ/K floor {floor}");
                }
            }
        }
    }
}
