//! # dimmer-baselines — the comparison points of the paper's evaluation
//!
//! Three baselines appear in the evaluation (§V):
//!
//! * **static LWB** — plain LWB with a fixed `N_TX = 3` and a single channel
//!   ([`StaticLwbRunner`]); the non-adaptive reference that collapses to
//!   ~27 % reliability under strong WiFi interference,
//! * **a tuned PI(D) controller** — the traditional closed-loop alternative
//!   to the DQN, with `K_P = 1`, `K_I = 0.25`, tuned for reliability first
//!   ([`PidController`], [`PidRunner`]); it adapts but overshoots and cannot
//!   quantify interference strength,
//! * **Crystal** — the state-of-the-art dependable ST protocol for aperiodic
//!   collection (Istomin et al., IPSN 2018), built on
//!   transmission–acknowledgement pairs, channel hopping and noise detection
//!   ([`CrystalConfig`], [`CrystalRunner`]); hand-tuned, near-perfect
//!   reliability at a high energy cost.
//!
//! The static-LWB and PID baselines reuse the [`dimmer_core::DimmerRunner`]
//! machinery with the learned adaptivity disabled, so the three systems are
//! compared on exactly the same substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crystal;
pub mod pid;
pub mod static_lwb;

pub use crystal::{CrystalConfig, CrystalEpochReport, CrystalRunner};
pub use pid::{PidController, PidRunner};
pub use static_lwb::StaticLwbRunner;
