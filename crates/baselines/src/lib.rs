//! # dimmer-baselines — the comparison points of the paper's evaluation
//!
//! Three baselines appear in the evaluation (§V):
//!
//! * **static LWB** — plain LWB with a fixed `N_TX = 3` and a single channel
//!   ([`StaticLwbRunner`]); the non-adaptive reference that collapses to
//!   ~27 % reliability under strong WiFi interference,
//! * **a tuned PI(D) controller** — the traditional closed-loop alternative
//!   to the DQN, with `K_P = 1`, `K_I = 0.25`, tuned for reliability first
//!   ([`PidController`], [`PidRunner`]); it adapts but overshoots and cannot
//!   quantify interference strength,
//! * **Crystal** — the state-of-the-art dependable ST protocol for aperiodic
//!   collection (Istomin et al., IPSN 2018), built on
//!   transmission–acknowledgement pairs, channel hopping and noise detection
//!   ([`CrystalConfig`], [`CrystalRunner`]); hand-tuned, near-perfect
//!   reliability at a high energy cost.
//!
//! All baselines plug into the generic
//! [`RoundEngine`](dimmer_core::RoundEngine) as
//! [`Controller`](dimmer_core::Controller)s (the PI(D) controller and the
//! fixed-`N_TX` rule) or through the engine's epoch adapter (Crystal), so
//! the four systems are compared on exactly the same substrate with
//! identical accounting. The [`registry`] module exposes them — and Dimmer
//! itself — behind a fluent [`SimulationBuilder`] and a string-keyed
//! [`ProtocolRegistry`] (`"dimmer-dqn"`, `"dimmer-rule"`, `"pid"`,
//! `"static"`, `"crystal"`), which is what the experiment binaries'
//! `--protocols` flags resolve against.
//!
//! The legacy [`PidRunner`] and [`StaticLwbRunner`] types are kept as thin
//! shims over the engine machinery; the engine-equivalence test suite pins
//! their report streams to the registry-built engines byte-for-byte.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod crystal;
pub mod pid;
pub mod registry;
pub mod static_lwb;

pub use crystal::{CrystalConfig, CrystalControl, CrystalEpochReport, CrystalRunner};
pub use pid::{PidController, PidRunner};
pub use registry::{
    ProtocolBuildFn, ProtocolEntry, ProtocolRegistry, SimulationBuilder, UnknownProtocolError,
};
pub use static_lwb::StaticLwbRunner;
