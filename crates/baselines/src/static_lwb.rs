//! The non-adaptive LWB baseline: fixed `N_TX = 3`, single channel,
//! best-effort.

use dimmer_core::{
    AdaptivityPolicy, DimmerConfig, DimmerRoundReport, DimmerRunner, ForwarderConfig,
};
use dimmer_lwb::{LwbConfig, TrafficPattern};
use dimmer_sim::{InterferenceModel, Topology};

/// Plain LWB with a static retransmission parameter (the paper uses
/// `N_TX = 3`) and no adaptation whatsoever.
///
/// This is the legacy shim kept for the engine-equivalence suite: it pins
/// `N_TX` *externally* (`force_ntx` before every round) around a
/// [`DimmerRunner`] with the adaptivity disabled. New code should use the
/// protocol registry's `"static"` entry (a
/// [`RoundEngine`](dimmer_core::RoundEngine) driven by
/// [`StaticNtxController`](dimmer_core::StaticNtxController)), which
/// reproduces this shim's report stream byte-for-byte.
///
/// # Examples
///
/// ```
/// use dimmer_baselines::StaticLwbRunner;
/// use dimmer_lwb::LwbConfig;
/// use dimmer_sim::{Topology, NoInterference};
/// let topo = Topology::kiel_testbed_18(1);
/// let mut lwb = StaticLwbRunner::new(&topo, &NoInterference, LwbConfig::testbed_default(), 3, 1);
/// let report = lwb.run_round();
/// assert_eq!(report.ntx, 3);
/// ```
#[derive(Debug)]
pub struct StaticLwbRunner<'a> {
    runner: DimmerRunner<'a>,
    ntx: u8,
}

impl<'a> StaticLwbRunner<'a> {
    /// Creates a static-LWB runner with the given fixed `N_TX`.
    pub fn new(
        topology: &'a Topology,
        interference: &'a dyn InterferenceModel,
        lwb_config: LwbConfig,
        ntx: u8,
        seed: u64,
    ) -> Self {
        let config = DimmerConfig {
            adaptivity_enabled: false,
            initial_ntx: ntx,
            forwarder: ForwarderConfig {
                enabled: false,
                ..Default::default()
            },
            ..DimmerConfig::default()
        };
        let runner = DimmerRunner::new(
            topology,
            interference,
            lwb_config,
            config,
            AdaptivityPolicy::rule_based(),
            seed,
        );
        StaticLwbRunner { runner, ntx }
    }

    /// Replaces the traffic pattern.
    pub fn with_traffic(mut self, traffic: TrafficPattern) -> Self {
        self.runner = self.runner.with_traffic(traffic);
        self
    }

    /// The fixed `N_TX` used by this baseline.
    pub fn ntx(&self) -> u8 {
        self.ntx
    }

    /// Total energy spent so far, in Joules.
    pub fn total_energy_joules(&self) -> f64 {
        self.runner.total_energy_joules()
    }

    /// End-to-end application reliability so far.
    pub fn app_reliability(&self) -> f64 {
        self.runner.app_reliability()
    }

    /// Runs one round with the fixed `N_TX`.
    pub fn run_round(&mut self) -> DimmerRoundReport {
        // Re-apply the fixed value defensively in case callers poked at it.
        self.runner.force_ntx(self.ntx);
        self.runner.run_round()
    }

    /// Runs `count` rounds.
    pub fn run_rounds(&mut self, count: usize) -> Vec<DimmerRoundReport> {
        (0..count).map(|_| self.run_round()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimmer_sim::{NoInterference, PeriodicJammer};

    #[test]
    fn ntx_never_changes() {
        let topo = Topology::kiel_testbed_18(1);
        let mut interference = dimmer_sim::CompositeInterference::new();
        for j in PeriodicJammer::kiel_pair(0.30) {
            interference.push(Box::new(j));
        }
        let mut lwb =
            StaticLwbRunner::new(&topo, &interference, LwbConfig::testbed_default(), 3, 2);
        for report in lwb.run_rounds(8) {
            assert_eq!(report.ntx, 3);
        }
        assert_eq!(lwb.ntx(), 3);
    }

    #[test]
    fn calm_static_lwb_is_reliable_and_cheap() {
        let topo = Topology::kiel_testbed_18(2);
        let mut lwb =
            StaticLwbRunner::new(&topo, &NoInterference, LwbConfig::testbed_default(), 3, 3);
        let reports = lwb.run_rounds(10);
        let avg_rel: f64 = reports.iter().map(|r| r.reliability).sum::<f64>() / 10.0;
        let avg_on: f64 = reports
            .iter()
            .map(|r| r.mean_radio_on.as_millis_f64())
            .sum::<f64>()
            / 10.0;
        assert!(
            avg_rel > 0.99,
            "calm LWB should be highly reliable, got {avg_rel}"
        );
        assert!(
            avg_on < 14.0,
            "calm LWB radio-on should be well below the 20 ms budget, got {avg_on}"
        );
    }

    #[test]
    fn static_lwb_degrades_under_jamming() {
        let topo = Topology::kiel_testbed_18(2);
        let mut interference = dimmer_sim::CompositeInterference::new();
        for j in PeriodicJammer::kiel_pair(0.35) {
            interference.push(Box::new(j));
        }
        let mut calm =
            StaticLwbRunner::new(&topo, &NoInterference, LwbConfig::testbed_default(), 3, 5);
        let mut jammed =
            StaticLwbRunner::new(&topo, &interference, LwbConfig::testbed_default(), 3, 5);
        let calm_rel: f64 = calm
            .run_rounds(8)
            .iter()
            .map(|r| r.reliability)
            .sum::<f64>()
            / 8.0;
        let jam_rel: f64 = jammed
            .run_rounds(8)
            .iter()
            .map(|r| r.reliability)
            .sum::<f64>()
            / 8.0;
        assert!(
            jam_rel < calm_rel - 0.05,
            "jamming must visibly hurt LWB ({calm_rel} vs {jam_rel})"
        );
    }
}
