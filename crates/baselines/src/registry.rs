//! The fluent [`SimulationBuilder`] and the string-keyed protocol registry.
//!
//! Every protocol of the paper's evaluation — and any future baseline — is
//! reachable through one door: describe the scenario with a
//! [`SimulationBuilder`] (topology, interference, traffic, seed, configs),
//! then either plug in a concrete [`Controller`] with
//! [`SimulationBuilder::build`] or ask the registry for a protocol by name
//! with [`SimulationBuilder::build_protocol`]:
//!
//! | Key           | Protocol                                              |
//! |---------------|-------------------------------------------------------|
//! | `dimmer-dqn`  | Dimmer with the builder's policy (pretrained DQN by default) |
//! | `dimmer-rule` | Dimmer with the hand-written rule-based policy        |
//! | `pid`         | LWB driven by the tuned PI(D) controller              |
//! | `static`      | Plain LWB at a fixed `N_TX` (default 3)               |
//! | `crystal`     | The Crystal epoch protocol via the engine's epoch adapter |
//! | `dimmer-zoo`  | Per-family DQN zoo selected online by an EXP3 meta-controller |
//!
//! The registry is the single source of protocol names for the experiment
//! binaries' `--protocols` flag, and [`ProtocolRegistry::register`] lets
//! downstream code add its own controllers without touching this crate.
//!
//! # Examples
//!
//! ```
//! use dimmer_baselines::SimulationBuilder;
//! use dimmer_sim::Topology;
//!
//! let topo = Topology::kiel_testbed_18(1);
//! let mut sim = SimulationBuilder::new(&topo)
//!     .seed(42)
//!     .build_protocol("pid")
//!     .unwrap();
//! let reports = sim.run_rounds(5);
//! assert_eq!(reports.len(), 5);
//! assert_eq!(sim.protocol(), "pid");
//! ```

use crate::crystal::{CrystalConfig, CrystalControl, CrystalRunner};
use crate::pid::PidController;
use dimmer_core::{
    AdaptivityController, AdaptivityPolicy, Controller, DimmerConfig, RoundEngine, Simulation,
    StaticNtxController,
};
use dimmer_lwb::{LwbConfig, TrafficPattern};
use dimmer_sim::{InterferenceModel, NoInterference, ScenarioScript, Topology};

/// Fluent description of one simulation: the substrate (topology,
/// interference), the workload (traffic), the protocol configurations and
/// the seed. Finish with [`build`](Self::build) (explicit controller) or
/// [`build_protocol`](Self::build_protocol) (registry name).
#[derive(Clone)]
pub struct SimulationBuilder<'a> {
    topology: &'a Topology,
    interference: &'a dyn InterferenceModel,
    lwb_config: LwbConfig,
    dimmer_config: DimmerConfig,
    crystal_config: CrystalConfig,
    pid: PidController,
    static_ntx: u8,
    policy: Option<AdaptivityPolicy>,
    traffic: TrafficPattern,
    script: ScenarioScript,
    seed: u64,
}

impl<'a> SimulationBuilder<'a> {
    /// Starts a builder over `topology` with the testbed defaults: no
    /// interference, all-to-all broadcast traffic, default Dimmer/LWB
    /// configurations, seed 1.
    pub fn new(topology: &'a Topology) -> Self {
        SimulationBuilder {
            topology,
            interference: &NoInterference,
            lwb_config: LwbConfig::testbed_default(),
            dimmer_config: DimmerConfig::default(),
            crystal_config: CrystalConfig::ewsn2019(),
            pid: PidController::paper_pi(),
            static_ntx: 3,
            policy: None,
            traffic: TrafficPattern::AllToAll,
            script: ScenarioScript::new(),
            seed: 1,
        }
    }

    /// Sets the interference model the simulation runs under.
    pub fn interference(mut self, interference: &'a dyn InterferenceModel) -> Self {
        self.interference = interference;
        self
    }

    /// Sets the LWB configuration (round period, slots, channel hopping).
    pub fn lwb_config(mut self, config: LwbConfig) -> Self {
        self.lwb_config = config;
        self
    }

    /// Sets the Dimmer configuration (state layout, `N_TX` range, ACKs,
    /// forwarder selection).
    pub fn dimmer_config(mut self, config: DimmerConfig) -> Self {
        self.dimmer_config = config;
        self
    }

    /// Sets the Crystal configuration used by the `"crystal"` protocol.
    pub fn crystal_config(mut self, config: CrystalConfig) -> Self {
        self.crystal_config = config;
        self
    }

    /// Sets the PI(D) gains used by the `"pid"` protocol.
    pub fn pid(mut self, pid: PidController) -> Self {
        self.pid = pid;
        self
    }

    /// Sets the fixed `N_TX` used by the `"static"` protocol (paper: 3).
    pub fn static_ntx(mut self, ntx: u8) -> Self {
        self.static_ntx = ntx;
        self
    }

    /// Sets the adaptivity policy used by the `"dimmer-dqn"` protocol.
    /// Without this, `"dimmer-dqn"` falls back to the pretrained network
    /// shipped with `dimmer-core` (or its rule-based fallback).
    pub fn policy(mut self, policy: AdaptivityPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Sets the traffic pattern (default: all-to-all broadcast).
    pub fn traffic(mut self, traffic: TrafficPattern) -> Self {
        self.traffic = traffic;
        self
    }

    /// Installs a dynamic-world scenario script (node churn, link drift,
    /// topology swaps), applied between rounds by every protocol built from
    /// this builder. The default is the empty script — a static world,
    /// byte-for-byte identical to runs without one.
    pub fn script(mut self, script: ScenarioScript) -> Self {
        self.script = script;
        self
    }

    /// Sets the seed all of the simulation's randomness derives from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The Dimmer configuration with the input-node count clamped to the
    /// topology size, so DQN state layouts stay valid on small topologies.
    fn normalized_config(&self) -> DimmerConfig {
        let k = self
            .dimmer_config
            .k_input_nodes
            .min(self.topology.num_nodes());
        self.dimmer_config.clone().with_k_input_nodes(k)
    }

    /// The normalized configuration with central adaptivity and forwarder
    /// selection disabled — the substrate settings the non-Dimmer baselines
    /// have always run on.
    fn baseline_config(&self) -> DimmerConfig {
        let mut cfg = self.normalized_config().without_adaptivity();
        cfg.forwarder.enabled = false;
        cfg
    }

    /// Builds a [`RoundEngine`] driven by an explicit `controller`.
    pub fn build<C: Controller>(self, controller: C) -> RoundEngine<'a, C> {
        let cfg = self.normalized_config();
        RoundEngine::with_controller(
            self.topology,
            self.interference,
            self.lwb_config,
            cfg,
            controller,
            self.seed,
        )
        .with_traffic(self.traffic)
        .with_world_script(self.script)
    }

    /// Builds the protocol registered under `name` in the
    /// [standard registry](ProtocolRegistry::standard).
    pub fn build_protocol(
        self,
        name: &str,
    ) -> Result<Box<dyn Simulation + 'a>, UnknownProtocolError> {
        ProtocolRegistry::standard().build(name, self)
    }
}

/// Error returned when a protocol name is not in the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownProtocolError {
    /// The name that was requested.
    pub requested: String,
    /// Every name the registry knows.
    pub known: Vec<&'static str>,
}

impl std::fmt::Display for UnknownProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown protocol '{}' (known: {})",
            self.requested,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownProtocolError {}

/// Constructor of one registered protocol.
pub type ProtocolBuildFn = for<'a> fn(SimulationBuilder<'a>) -> Box<dyn Simulation + 'a>;

/// One entry of the [`ProtocolRegistry`].
pub struct ProtocolEntry {
    /// Registry key (the value of the binaries' `--protocols` flag).
    pub name: &'static str,
    /// One-line description shown by help text and docs.
    pub summary: &'static str,
    build: ProtocolBuildFn,
}

/// String-keyed catalogue of every protocol the engine can run.
pub struct ProtocolRegistry {
    entries: Vec<ProtocolEntry>,
}

impl ProtocolRegistry {
    /// An empty registry (extend it with [`register`](Self::register)).
    pub fn new() -> Self {
        ProtocolRegistry {
            entries: Vec::new(),
        }
    }

    /// The standard registry holding the paper's four protocols (with the
    /// Dimmer adaptivity in both its DQN and rule-based form).
    pub fn standard() -> Self {
        let mut reg = Self::new();
        reg.register(
            "dimmer-dqn",
            "Dimmer with the builder's adaptivity policy (pretrained DQN by default)",
            build_dimmer_dqn,
        );
        reg.register(
            "dimmer-rule",
            "Dimmer with the hand-written rule-based adaptivity policy",
            build_dimmer_rule,
        );
        reg.register(
            "pid",
            "LWB driven by the tuned PI(D) controller baseline",
            build_pid,
        );
        reg.register(
            "static",
            "Plain LWB at a fixed N_TX (no adaptation)",
            build_static,
        );
        reg.register(
            "crystal",
            "Crystal's TA-pair epochs via the engine's epoch adapter",
            build_crystal,
        );
        reg.register(
            "dimmer-zoo",
            "Per-family DQN zoo selected online by an EXP3 meta-controller",
            build_dimmer_zoo,
        );
        reg
    }

    /// Adds (or replaces) a protocol under `name`.
    pub fn register(&mut self, name: &'static str, summary: &'static str, build: ProtocolBuildFn) {
        self.entries.retain(|e| e.name != name);
        self.entries.push(ProtocolEntry {
            name,
            summary,
            build,
        });
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// The registered entries, in registration order.
    pub fn entries(&self) -> &[ProtocolEntry] {
        &self.entries
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// Builds the protocol registered under `name` from `builder`.
    pub fn build<'a>(
        &self,
        name: &str,
        builder: SimulationBuilder<'a>,
    ) -> Result<Box<dyn Simulation + 'a>, UnknownProtocolError> {
        match self.entries.iter().find(|e| e.name == name) {
            Some(entry) => Ok((entry.build)(builder)),
            None => Err(UnknownProtocolError {
                requested: name.to_string(),
                known: self.names(),
            }),
        }
    }
}

impl Default for ProtocolRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

fn build_adaptivity<'a>(
    builder: SimulationBuilder<'a>,
    policy: AdaptivityPolicy,
) -> Box<dyn Simulation + 'a> {
    let cfg = builder.normalized_config();
    let controller = AdaptivityController::new(policy, cfg.clone());
    Box::new(
        RoundEngine::with_controller(
            builder.topology,
            builder.interference,
            builder.lwb_config,
            cfg,
            controller,
            builder.seed,
        )
        .with_traffic(builder.traffic)
        .with_world_script(builder.script),
    )
}

fn build_dimmer_dqn<'a>(builder: SimulationBuilder<'a>) -> Box<dyn Simulation + 'a> {
    let policy = builder
        .policy
        .clone()
        .unwrap_or_else(dimmer_core::pretrained::pretrained_policy);
    build_adaptivity(builder, policy)
}

fn build_dimmer_rule<'a>(builder: SimulationBuilder<'a>) -> Box<dyn Simulation + 'a> {
    build_adaptivity(builder, AdaptivityPolicy::rule_based())
}

fn build_pid<'a>(builder: SimulationBuilder<'a>) -> Box<dyn Simulation + 'a> {
    let cfg = builder.baseline_config();
    Box::new(
        RoundEngine::with_controller(
            builder.topology,
            builder.interference,
            builder.lwb_config,
            cfg,
            builder.pid.clone(),
            builder.seed,
        )
        .with_traffic(builder.traffic)
        .with_world_script(builder.script),
    )
}

fn build_static<'a>(builder: SimulationBuilder<'a>) -> Box<dyn Simulation + 'a> {
    let mut cfg = builder.baseline_config();
    cfg.initial_ntx = builder.static_ntx.clamp(cfg.n_min, cfg.n_max);
    Box::new(
        RoundEngine::with_controller(
            builder.topology,
            builder.interference,
            builder.lwb_config,
            cfg,
            StaticNtxController::new(builder.static_ntx),
            builder.seed,
        )
        .with_traffic(builder.traffic)
        .with_world_script(builder.script),
    )
}

fn build_dimmer_zoo<'a>(builder: SimulationBuilder<'a>) -> Box<dyn Simulation + 'a> {
    // The zoo brings its own per-family policies; the builder's single
    // `policy` override (which every harness passes for `dimmer-dqn`) is
    // deliberately ignored. The meta-controller's arm draws come from an
    // engine-external RNG derived from the builder seed.
    let cfg = builder.normalized_config();
    let controller = dimmer_core::ZooController::standard(cfg.clone());
    Box::new(
        RoundEngine::with_controller(
            builder.topology,
            builder.interference,
            builder.lwb_config,
            cfg,
            controller,
            builder.seed,
        )
        .with_traffic(builder.traffic)
        .with_world_script(builder.script),
    )
}

fn build_crystal<'a>(builder: SimulationBuilder<'a>) -> Box<dyn Simulation + 'a> {
    let sink = builder
        .traffic
        .sink()
        .unwrap_or_else(|| builder.topology.coordinator());
    // World validation only protects the topology coordinator; Crystal's
    // sink may be a different node, so reject sink-killing scripts here,
    // at construction time, instead of panicking rounds into the run.
    assert!(
        !builder
            .script
            .events()
            .iter()
            .any(|(_, e)| matches!(e, dimmer_sim::WorldEvent::NodeFail(n) if *n == sink)),
        "the Crystal sink cannot fail (scripted NodeFail({sink}))"
    );
    let driver = Box::new(CrystalRunner::new(
        builder.topology,
        builder.interference,
        builder.crystal_config.clone(),
        sink,
        builder.seed,
    ));
    let cfg = builder.normalized_config();
    Box::new(
        RoundEngine::with_epoch_driver(
            builder.topology,
            builder.lwb_config,
            cfg,
            CrystalControl,
            driver,
            builder.seed,
        )
        .with_traffic(builder.traffic)
        .with_world_script(builder.script),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimmer_sim::SimDuration;

    #[test]
    fn standard_registry_lists_the_paper_protocols() {
        let reg = ProtocolRegistry::standard();
        assert_eq!(
            reg.names(),
            vec![
                "dimmer-dqn",
                "dimmer-rule",
                "pid",
                "static",
                "crystal",
                "dimmer-zoo"
            ]
        );
        assert!(reg.contains("pid"));
        assert!(!reg.contains("lwb"));
        assert!(reg.entries().iter().all(|e| !e.summary.is_empty()));
    }

    #[test]
    fn unknown_protocol_reports_the_known_names() {
        let topo = Topology::kiel_testbed_18(1);
        let err = SimulationBuilder::new(&topo)
            .build_protocol("carrier-pigeon")
            .err()
            .expect("unknown name must fail");
        assert_eq!(err.requested, "carrier-pigeon");
        assert!(err.known.contains(&"crystal"));
        assert!(err.to_string().contains("carrier-pigeon"));
    }

    #[test]
    fn every_registered_protocol_constructs_and_runs() {
        let topo = Topology::kiel_testbed_18(1);
        for name in ProtocolRegistry::standard().names() {
            let mut sim = SimulationBuilder::new(&topo)
                .policy(AdaptivityPolicy::rule_based())
                .seed(3)
                .build_protocol(name)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let reports = sim.run_rounds(3);
            assert_eq!(reports.len(), 3, "{name}");
            assert_eq!(sim.rounds_run(), 3, "{name}");
            for r in &reports {
                assert!((0.0..=1.0).contains(&r.reliability), "{name}");
                assert!(r.energy_joules >= 0.0, "{name}");
            }
        }
    }

    #[test]
    fn builder_clamps_the_input_nodes_to_the_topology() {
        let topo = Topology::grid(3, 3, 8.0, 1);
        let mut sim = SimulationBuilder::new(&topo)
            .policy(AdaptivityPolicy::rule_based())
            .build_protocol("dimmer-dqn")
            .unwrap();
        // Without the clamp the 10-node state layout would panic on the
        // 9-node grid.
        let reports = sim.run_rounds(2);
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn registry_can_be_extended_with_custom_protocols() {
        fn build_fixed<'a>(builder: SimulationBuilder<'a>) -> Box<dyn Simulation + 'a> {
            let cfg = builder.baseline_config();
            Box::new(
                RoundEngine::with_controller(
                    builder.topology,
                    builder.interference,
                    builder.lwb_config,
                    cfg,
                    StaticNtxController::new(5),
                    builder.seed,
                )
                .with_traffic(builder.traffic),
            )
        }
        let mut reg = ProtocolRegistry::standard();
        reg.register("static-5", "LWB pinned at N_TX = 5", build_fixed);
        let topo = Topology::kiel_testbed_18(1);
        let mut sim = reg
            .build("static-5", SimulationBuilder::new(&topo))
            .unwrap();
        assert_eq!(sim.run_rounds(2).len(), 2);
        assert_eq!(sim.ntx(), 5);
    }

    #[test]
    fn every_protocol_runs_a_churn_script_through_the_builder() {
        use dimmer_sim::{NodeId, SimTime};
        let topo = Topology::kiel_testbed_18(1);
        // 4-second rounds: two nodes fail before round 1, one rejoins
        // before round 3.
        let script = ScenarioScript::new()
            .fail_node(SimTime::from_secs(4), NodeId(6))
            .fail_node(SimTime::from_secs(4), NodeId(11))
            .rejoin_node(SimTime::from_secs(12), NodeId(6));
        for name in ProtocolRegistry::standard().names() {
            let mut sim = SimulationBuilder::new(&topo)
                .policy(AdaptivityPolicy::rule_based())
                .script(script.clone())
                .seed(5)
                .build_protocol(name)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let reports = sim.run_rounds(4);
            assert_eq!(reports[0].alive_nodes, 18, "{name}");
            assert_eq!(reports[1].alive_nodes, 16, "{name}");
            assert_eq!(reports[3].alive_nodes, 17, "{name}");
            for r in &reports {
                assert!((0.0..=1.0).contains(&r.reliability), "{name}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "sink cannot fail")]
    fn crystal_rejects_sink_killing_scripts_at_construction() {
        use dimmer_sim::{NodeId, SimTime};
        let topo = Topology::dcube_48(1);
        let sink = NodeId(7);
        let traffic = TrafficPattern::dcube_collection(48, 5, sink);
        // The sink is not the coordinator, so World validation alone would
        // let this through and the run would panic rounds later.
        let _ = SimulationBuilder::new(&topo)
            .traffic(traffic)
            .script(ScenarioScript::new().fail_node(SimTime::from_secs(40), sink))
            .build_protocol("crystal");
    }

    #[test]
    fn crystal_protocol_tracks_collection_reliability() {
        let topo = Topology::dcube_48(1);
        let traffic = TrafficPattern::dcube_collection(48, 5, topo.coordinator());
        // A non-default flood N_TX pins ntx() and the reports to the
        // driver's value rather than the engine-level parameter.
        let crystal_config = CrystalConfig {
            flood_ntx: 5,
            ..CrystalConfig::ewsn2019()
        };
        let mut sim = SimulationBuilder::new(&topo)
            .lwb_config(LwbConfig::dcube_default())
            .crystal_config(crystal_config)
            .traffic(traffic)
            .seed(9)
            .build_protocol("crystal")
            .unwrap();
        let reports = sim.run_rounds(5);
        assert_eq!(sim.protocol(), "crystal");
        assert_eq!(sim.ntx(), 5, "ntx() reflects the epoch driver");
        assert!(reports.iter().all(|r| r.ntx == 5));
        assert!(sim.app_reliability() > 0.9);
        assert!(sim.total_energy_joules() > 0.0);
        assert!(reports
            .iter()
            .all(|r| r.mean_radio_on <= SimDuration::from_millis(20)));
    }
}
