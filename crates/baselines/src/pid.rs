//! The PI(D)-controller baseline (§V-A "Baselines").
//!
//! PID controllers are the go-to traditional approach for closed-loop
//! control. The paper tunes a PI controller (`K_P = 1`, `K_I = 0.25`) through
//! experiments on the deployment, maximizing reliability first and energy
//! second, and uses it as the "traditional methods" comparison for the DQN.
//! Its characteristic behaviour (Fig. 4d / Fig. 5b): it reacts to losses by
//! overshooting to the maximum retransmission count and, because of the
//! integral term, is slow to come back down — and it cannot distinguish
//! interference *levels*.

use dimmer_core::{
    AdaptivityPolicy, ControlDecision, Controller, DimmerConfig, DimmerRoundReport, DimmerRunner,
    RoundObservation,
};
use dimmer_lwb::{LwbConfig, TrafficPattern};
use dimmer_sim::{InterferenceModel, Topology};

/// A discrete PI(D) controller mapping observed reliability to the next
/// `N_TX`.
///
/// The error signal is `1 − reliability`; the integral term accumulates it
/// with a slow leak so the controller eventually relaxes after interference
/// has passed. The output is mapped linearly onto `[n_min, n_max]`.
///
/// # Examples
///
/// ```
/// use dimmer_baselines::PidController;
/// let mut pid = PidController::paper_pi();
/// // Heavy losses drive the controller to the maximum.
/// let mut ntx = 3;
/// for _ in 0..6 { ntx = pid.update(0.5); }
/// assert_eq!(ntx, 8);
/// // A long calm stretch lets it relax again.
/// for _ in 0..60 { ntx = pid.update(1.0); }
/// assert!(ntx <= 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PidController {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Per-round leak subtracted from the integral accumulator (models the
    /// slow relaxation the paper tuned for).
    pub integral_leak: f64,
    /// Smallest `N_TX` the controller outputs.
    pub n_min: u8,
    /// Largest `N_TX` the controller outputs.
    pub n_max: u8,
    integral: f64,
    last_error: f64,
}

impl PidController {
    /// The PI configuration used in the paper: `K_P = 1`, `K_I = 0.25`, no
    /// derivative term.
    pub fn paper_pi() -> Self {
        PidController {
            kp: 1.0,
            ki: 0.25,
            kd: 0.0,
            integral_leak: 0.05,
            n_min: 1,
            n_max: 8,
            integral: 0.0,
            last_error: 0.0,
        }
    }

    /// Creates a controller with explicit gains and the paper's output range.
    pub fn new(kp: f64, ki: f64, kd: f64) -> Self {
        PidController {
            kp,
            ki,
            kd,
            ..Self::paper_pi()
        }
    }

    /// Resets the controller's internal state.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = 0.0;
    }

    /// The current value of the integral accumulator (useful for tests and
    /// plots).
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// Consumes one reliability observation (in `[0, 1]`) and returns the
    /// `N_TX` to apply in the next round.
    pub fn update(&mut self, reliability: f64) -> u8 {
        let error = (1.0 - reliability.clamp(0.0, 1.0)).max(0.0);
        // Anti-windup clamp plus a slow leak: the controller relaxes after a
        // long calm stretch, but much more slowly than it ramps up (Fig. 4d).
        self.integral = (self.integral + error - self.integral_leak).clamp(0.0, 2.0);
        let derivative = error - self.last_error;
        self.last_error = error;
        let output = self.kp * error + self.ki * self.integral + self.kd * derivative;
        // `output` ≈ 0 when calm, ≳ 1 under sustained heavy losses; map it
        // onto the retransmission range.
        let span = (self.n_max - self.n_min) as f64;
        let ntx = self.n_min as f64 + (output * 2.0 * span).round();
        ntx.clamp(self.n_min as f64, self.n_max as f64) as u8
    }
}

impl Default for PidController {
    fn default() -> Self {
        Self::paper_pi()
    }
}

/// The PI(D) baseline as a [`Controller`]: it feeds the observed round
/// reliability into [`PidController::update`] and pins the next round's
/// `N_TX` to the controller output — exactly the feedback loop the legacy
/// [`PidRunner`] ran externally around the Dimmer runner.
impl Controller for PidController {
    fn name(&self) -> &str {
        "pid"
    }

    fn observe(&mut self, obs: &RoundObservation<'_>) -> ControlDecision {
        ControlDecision::SetNtx(self.update(obs.reliability))
    }

    fn reset(&mut self) {
        PidController::reset(self);
    }
}

/// Drives the LWB stack with the PI controller choosing `N_TX` each round —
/// the "traditional adaptivity" system compared against Dimmer in
/// Figs. 4d and 5.
///
/// This is the legacy shim kept for the engine-equivalence suite: it runs
/// the PID feedback loop *externally* (`run_round` → `update` → `force_ntx`)
/// around a [`DimmerRunner`] with the adaptivity disabled. New code should
/// plug the [`PidController`] straight into a
/// [`RoundEngine`](dimmer_core::RoundEngine) via the protocol registry
/// (`"pid"`), which reproduces this shim's report stream byte-for-byte.
#[derive(Debug)]
pub struct PidRunner<'a> {
    runner: DimmerRunner<'a>,
    pid: PidController,
}

impl<'a> PidRunner<'a> {
    /// Creates a PID-driven LWB runner over the given substrate.
    pub fn new(
        topology: &'a Topology,
        interference: &'a dyn InterferenceModel,
        lwb_config: LwbConfig,
        pid: PidController,
        seed: u64,
    ) -> Self {
        let config = DimmerConfig {
            adaptivity_enabled: false,
            forwarder: dimmer_core::ForwarderConfig {
                enabled: false,
                ..Default::default()
            },
            ..DimmerConfig::default()
        };
        let runner = DimmerRunner::new(
            topology,
            interference,
            lwb_config,
            config,
            AdaptivityPolicy::rule_based(),
            seed,
        );
        PidRunner { runner, pid }
    }

    /// Replaces the traffic pattern.
    pub fn with_traffic(mut self, traffic: TrafficPattern) -> Self {
        self.runner = self.runner.with_traffic(traffic);
        self
    }

    /// The controller driving this runner (e.g. to carry its integral state
    /// into a follow-up run over a different interference object).
    pub fn controller(&self) -> &PidController {
        &self.pid
    }

    /// The `N_TX` currently applied.
    pub fn ntx(&self) -> u8 {
        self.runner.ntx()
    }

    /// Total energy spent so far, in Joules.
    pub fn total_energy_joules(&self) -> f64 {
        self.runner.total_energy_joules()
    }

    /// End-to-end application reliability so far.
    pub fn app_reliability(&self) -> f64 {
        self.runner.app_reliability()
    }

    /// Runs one round: executes LWB with the controller's current `N_TX`,
    /// then feeds the observed reliability back into the controller.
    pub fn run_round(&mut self) -> DimmerRoundReport {
        let report = self.runner.run_round();
        let next = self.pid.update(report.reliability);
        self.runner.force_ntx(next);
        report
    }

    /// Runs `count` rounds.
    pub fn run_rounds(&mut self, count: usize) -> Vec<DimmerRoundReport> {
        (0..count).map(|_| self.run_round()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimmer_sim::{NoInterference, PeriodicJammer};
    use proptest::prelude::*;

    #[test]
    fn paper_gains() {
        let pid = PidController::paper_pi();
        assert_eq!(pid.kp, 1.0);
        assert_eq!(pid.ki, 0.25);
        assert_eq!(pid.kd, 0.0);
    }

    #[test]
    fn sustained_losses_saturate_the_output() {
        let mut pid = PidController::paper_pi();
        let mut out = 0;
        for _ in 0..10 {
            out = pid.update(0.6);
        }
        assert_eq!(out, 8);
    }

    #[test]
    fn calm_relaxes_slowly_due_to_the_integral_term() {
        let mut pid = PidController::paper_pi();
        for _ in 0..10 {
            pid.update(0.5);
        }
        let first_calm = pid.update(1.0);
        assert!(
            first_calm >= 4,
            "the integral keeps N_TX high right after interference"
        );
        let mut last = first_calm;
        for _ in 0..80 {
            last = pid.update(1.0);
        }
        assert!(
            last <= 2,
            "after a long calm stretch the controller relaxes, got {last}"
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = PidController::paper_pi();
        for _ in 0..10 {
            pid.update(0.2);
        }
        assert!(pid.integral() > 0.0);
        pid.reset();
        assert_eq!(pid.integral(), 0.0);
        assert_eq!(pid.update(1.0), 1);
    }

    #[test]
    fn pid_runner_reacts_to_jamming() {
        let topo = Topology::kiel_testbed_18(1);
        let mut interference = dimmer_sim::CompositeInterference::new();
        for j in PeriodicJammer::kiel_pair(0.35) {
            interference.push(Box::new(j));
        }
        let mut jammed = PidRunner::new(
            &topo,
            &interference,
            LwbConfig::testbed_default(),
            PidController::paper_pi(),
            3,
        );
        let mut calm = PidRunner::new(
            &topo,
            &NoInterference,
            LwbConfig::testbed_default(),
            PidController::paper_pi(),
            3,
        );
        jammed.run_rounds(12);
        calm.run_rounds(12);
        assert!(
            jammed.ntx() > calm.ntx(),
            "the PID must use more retransmissions under jamming ({} vs {})",
            jammed.ntx(),
            calm.ntx()
        );
    }

    #[test]
    fn pid_runner_stays_modest_when_calm() {
        let topo = Topology::kiel_testbed_18(1);
        let mut runner = PidRunner::new(
            &topo,
            &NoInterference,
            LwbConfig::testbed_default(),
            PidController::paper_pi(),
            3,
        );
        let reports = runner.run_rounds(20);
        let avg_rel: f64 = reports.iter().map(|r| r.reliability).sum::<f64>() / 20.0;
        assert!(avg_rel > 0.97);
        assert!(runner.ntx() <= 4);
    }

    proptest! {
        #[test]
        fn prop_output_always_in_range(reliabilities in proptest::collection::vec(0.0f64..=1.0, 1..100)) {
            let mut pid = PidController::paper_pi();
            for r in reliabilities {
                let ntx = pid.update(r);
                prop_assert!((1..=8).contains(&ntx));
            }
        }

        #[test]
        fn prop_lower_reliability_never_lowers_ntx(r1 in 0.0f64..=1.0, r2 in 0.0f64..=1.0) {
            // From identical state, a worse observation must not produce a
            // smaller N_TX than a better one.
            let (good, bad) = if r1 >= r2 { (r1, r2) } else { (r2, r1) };
            let mut a = PidController::paper_pi();
            let mut b = PidController::paper_pi();
            prop_assert!(b.update(bad) >= a.update(good));
        }
    }
}
