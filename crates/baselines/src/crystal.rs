//! A simplified model of Crystal (Istomin et al., IPSN 2018), the
//! state-of-the-art dependable ST protocol the paper compares against in
//! §V-E.
//!
//! Crystal targets aperiodic data collection. An epoch starts with a
//! synchronization flood from the sink, followed by a train of
//! transmission–acknowledgement (TA) pairs: sources with pending data flood
//! their packet in the T slot (concurrent senders are resolved by the
//! capture effect), the sink floods an acknowledgement in the A slot. The
//! train continues until the network has been silent for a couple of pairs;
//! noise detection adds extra pairs under interference. Channel hopping is
//! applied per TA pair. The result is near-perfect reliability under harsh
//! interference at a high energy cost — the behaviour reproduced here.
//!
//! The model keeps Crystal's decisive mechanisms (retransmit-until-ACK,
//! per-pair hopping, silence-based termination, capture among concurrent
//! senders) and omits firmware-level details (exact slot lengths, noise
//! floor estimation), which only shift absolute numbers.

use dimmer_core::{ControlDecision, Controller, EpochDriver, EpochOutcome, RoundObservation};
use dimmer_glossy::{FloodSimulator, GlossyConfig, NtxAssignment};
use dimmer_lwb::HoppingSequence;
use dimmer_sim::{
    InterferenceModel, NodeId, RadioAccounting, SimDuration, SimRng, SimTime, Topology, WorldEvent,
};

/// Configuration of the Crystal baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CrystalConfig {
    /// `N_TX` used inside each T/A flood.
    pub flood_ntx: u8,
    /// Maximum number of TA pairs per epoch (bounds the energy spent).
    pub max_ta_pairs: usize,
    /// Number of consecutive silent pairs after which the epoch ends.
    pub quiet_pairs_to_stop: usize,
    /// Extra pairs appended when the epoch saw losses (the noise-detection
    /// heuristic of the EWSN-2019 Crystal configuration).
    pub noise_extra_pairs: usize,
    /// Whether TA pairs hop over the channel sequence.
    pub channel_hopping: bool,
    /// Payload carried in T slots, in bytes.
    pub payload_bytes: usize,
    /// Budget of each individual flood.
    pub slot_duration: SimDuration,
}

impl CrystalConfig {
    /// The configuration used for the EWSN 2019 dependability-competition
    /// scenario (aperiodic collection under WiFi interference).
    pub fn ewsn2019() -> Self {
        CrystalConfig {
            flood_ntx: 3,
            max_ta_pairs: 24,
            quiet_pairs_to_stop: 2,
            noise_extra_pairs: 4,
            channel_hopping: true,
            payload_bytes: 30,
            slot_duration: SimDuration::from_millis(10),
        }
    }
}

impl Default for CrystalConfig {
    fn default() -> Self {
        Self::ewsn2019()
    }
}

/// Outcome of one Crystal epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct CrystalEpochReport {
    /// The sources that had data queued at the start of the epoch.
    pub offered: Vec<NodeId>,
    /// The subset of `offered` whose packet reached the sink.
    pub delivered: Vec<NodeId>,
    /// Number of TA pairs executed.
    pub ta_pairs: usize,
    /// Total energy spent by the network during the epoch, in Joules.
    pub energy_joules: f64,
    /// Per-slot radio-on time averaged over nodes and slots.
    pub mean_radio_on: SimDuration,
}

impl CrystalEpochReport {
    /// Delivery ratio of the epoch (1.0 if nothing was offered).
    pub fn reliability(&self) -> f64 {
        if self.offered.is_empty() {
            1.0
        } else {
            self.delivered.len() as f64 / self.offered.len() as f64
        }
    }
}

/// Executes Crystal epochs over the simulated substrate.
///
/// The runner owns one [`FloodSimulator`], so the topology is compiled once
/// at construction and every T/A flood of every epoch reuses the same
/// scratch workspace.
#[derive(Debug)]
pub struct CrystalRunner<'a> {
    topology: &'a Topology,
    flood: FloodSimulator<'a>,
    config: CrystalConfig,
    hopping: HoppingSequence,
    sink: NodeId,
    now: SimTime,
    rng: SimRng,
    total_energy: f64,
    total_offered: usize,
    total_delivered: usize,
    epochs: u64,
}

impl<'a> CrystalRunner<'a> {
    /// Creates a Crystal runner collecting data at `sink`.
    pub fn new(
        topology: &'a Topology,
        interference: &'a dyn InterferenceModel,
        config: CrystalConfig,
        sink: NodeId,
        seed: u64,
    ) -> Self {
        CrystalRunner {
            topology,
            flood: FloodSimulator::new(topology, interference),
            config,
            hopping: HoppingSequence::dimmer_default(),
            sink,
            now: SimTime::ZERO,
            rng: SimRng::seed_from(seed),
            total_energy: 0.0,
            total_offered: 0,
            total_delivered: 0,
            epochs: 0,
        }
    }

    /// The Crystal configuration driving the epochs.
    pub fn config(&self) -> &CrystalConfig {
        &self.config
    }

    /// Applies one dynamic-world event to the runner's compiled substrate.
    pub fn apply_world_event(&mut self, event: &WorldEvent) -> bool {
        self.flood.apply_world_event(event)
    }

    /// Installs the dynamic-world alive mask: dead nodes sit out every
    /// sync/T/A flood and drop out of the per-epoch energy accounting. The
    /// mask lives in the runner's [`FloodSimulator`] — the single source of
    /// truth for participation.
    ///
    /// # Panics
    ///
    /// Panics if the mask does not cover every node or marks the sink dead
    /// (the collection protocol cannot run without its sink).
    pub fn set_alive(&mut self, alive: &[bool]) {
        assert_eq!(
            alive.len(),
            self.topology.num_nodes(),
            "alive mask must cover every node"
        );
        assert!(alive[self.sink.index()], "the sink must stay alive");
        self.flood.set_alive(alive);
    }

    fn is_alive(&self, node: NodeId) -> bool {
        self.flood.alive().is_none_or(|a| a[node.index()])
    }

    fn alive_count(&self) -> usize {
        match self.flood.alive() {
            Some(a) => a.iter().filter(|&&x| x).count(),
            None => self.topology.num_nodes(),
        }
    }

    /// Cumulative delivery ratio over all epochs run so far.
    pub fn app_reliability(&self) -> f64 {
        if self.total_offered == 0 {
            1.0
        } else {
            self.total_delivered as f64 / self.total_offered as f64
        }
    }

    /// Total energy spent so far, in Joules.
    pub fn total_energy_joules(&self) -> f64 {
        self.total_energy
    }

    /// Number of epochs executed.
    pub fn epochs_run(&self) -> u64 {
        self.epochs
    }

    fn flood_config(&self, pair_index: usize, ack: bool) -> GlossyConfig {
        let channel = if self.config.channel_hopping {
            self.hopping
                .data_channel(self.epochs.wrapping_mul(64) + pair_index as u64 * 2 + ack as u64)
        } else {
            self.hopping.control_channel()
        };
        GlossyConfig {
            ntx: NtxAssignment::Uniform(self.config.flood_ntx),
            max_slot_duration: self.config.slot_duration,
            payload_bytes: if ack { 8 } else { self.config.payload_bytes },
            channel,
            ..GlossyConfig::default()
        }
    }

    /// Runs one epoch in which `sources` have a packet queued for the sink,
    /// advancing simulated time by `epoch_period`.
    pub fn run_epoch(
        &mut self,
        sources: &[NodeId],
        epoch_period: SimDuration,
    ) -> CrystalEpochReport {
        let mut per_node_energy: Vec<RadioAccounting> =
            vec![RadioAccounting::new(); self.topology.num_nodes()];
        let mut slot_count = 0usize;
        let mut cursor = self.now;

        // Synchronization flood from the sink (every epoch, even when idle).
        let sync_cfg = self.flood_config(0, true);
        let sync = self
            .flood
            .flood(&sync_cfg, self.sink, cursor, &mut self.rng);
        for node in self.topology.node_ids() {
            per_node_energy[node.index()].merge(&sync.node(node).radio);
        }
        slot_count += 1;
        cursor += self.config.slot_duration;

        let mut pending: Vec<NodeId> = sources
            .iter()
            .copied()
            .filter(|&s| s != self.sink && self.is_alive(s))
            .collect();
        let offered = pending.clone();
        let mut delivered: Vec<NodeId> = Vec::new();
        let mut quiet_pairs = 0usize;
        let mut pairs = 0usize;
        let mut extra_budget = 0usize;
        let mut saw_losses = false;

        while pairs < self.config.max_ta_pairs + extra_budget {
            if pending.is_empty() && quiet_pairs >= self.config.quiet_pairs_to_stop {
                break;
            }
            pairs += 1;

            // T slot: concurrent contenders are resolved by capture — pick
            // one pending source at random to win the flood.
            let t_delivered = if pending.is_empty() {
                // Silent pair: every alive node still listens for the whole
                // slot (dead radios are off).
                for node in self.topology.node_ids() {
                    if !self.is_alive(node) {
                        continue;
                    }
                    let mut listen = RadioAccounting::new();
                    listen.record(dimmer_sim::RadioState::Rx, self.config.slot_duration);
                    per_node_energy[node.index()].merge(&listen);
                }
                slot_count += 1;
                cursor += self.config.slot_duration;
                None
            } else {
                let winner = pending[self.rng.index(pending.len())];
                let t_cfg = self.flood_config(pairs, false);
                let t_flood = self.flood.flood(&t_cfg, winner, cursor, &mut self.rng);
                for node in self.topology.node_ids() {
                    per_node_energy[node.index()].merge(&t_flood.node(node).radio);
                }
                slot_count += 1;
                cursor += self.config.slot_duration;
                if t_flood.received(self.sink) {
                    Some(winner)
                } else {
                    saw_losses = true;
                    None
                }
            };

            // A slot: the sink floods the acknowledgement for the packet it
            // just received (or an empty beacon otherwise).
            let a_cfg = self.flood_config(pairs, true);
            let a_flood = self.flood.flood(&a_cfg, self.sink, cursor, &mut self.rng);
            for node in self.topology.node_ids() {
                per_node_energy[node.index()].merge(&a_flood.node(node).radio);
            }
            slot_count += 1;
            cursor += self.config.slot_duration;

            match t_delivered {
                Some(winner) => {
                    quiet_pairs = 0;
                    // The source stops retransmitting once it hears the ACK;
                    // if the ACK flood misses it, it retries and the sink
                    // simply receives a duplicate later (counted once).
                    if a_flood.received(winner) {
                        pending.retain(|&s| s != winner);
                    }
                    if !delivered.contains(&winner) {
                        delivered.push(winner);
                    }
                }
                None => {
                    quiet_pairs += 1;
                    if saw_losses && extra_budget == 0 {
                        // Noise detection: keep the radio on for extra pairs.
                        extra_budget = self.config.noise_extra_pairs;
                    }
                }
            }
        }

        let energy: f64 = per_node_energy
            .iter()
            .map(RadioAccounting::energy_joules)
            .sum();
        let mean_on_us: u64 = per_node_energy
            .iter()
            .map(|acc| acc.on_time().as_micros())
            .sum::<u64>()
            / (self.alive_count() as u64 * slot_count.max(1) as u64);

        self.total_energy += energy;
        self.total_offered += offered.len();
        self.total_delivered += delivered.len();
        self.epochs += 1;
        self.now += epoch_period;

        CrystalEpochReport {
            offered,
            delivered,
            ta_pairs: pairs,
            energy_joules: energy,
            mean_radio_on: SimDuration::from_micros(mean_on_us),
        }
    }
}

/// Adapts the Crystal epoch loop to the generic
/// [`RoundEngine`](dimmer_core::RoundEngine): each engine round runs one
/// Crystal epoch with the round's traffic as the offered sources.
impl EpochDriver for CrystalRunner<'_> {
    fn run_epoch(&mut self, sources: &[NodeId], period: SimDuration) -> EpochOutcome {
        let report = CrystalRunner::run_epoch(self, sources, period);
        EpochOutcome {
            offered: report.offered.len(),
            delivered: report.delivered.len(),
            mean_radio_on: report.mean_radio_on,
            energy_joules: report.energy_joules,
        }
    }

    fn ntx(&self) -> u8 {
        self.config().flood_ntx
    }

    fn world_event(&mut self, event: &WorldEvent) {
        self.apply_world_event(event);
    }

    fn set_alive(&mut self, alive: &[bool]) {
        CrystalRunner::set_alive(self, alive);
    }
}

/// The no-op [`Controller`] of the Crystal adapter.
///
/// Crystal has no global `N_TX` to steer between rounds — its adaptation
/// (retransmit-until-ACK, noise detection, per-pair channel hopping) lives
/// *inside* each epoch — so the controller only contributes the protocol's
/// registry name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrystalControl;

impl Controller for CrystalControl {
    fn name(&self) -> &str {
        "crystal"
    }

    fn observe(&mut self, _obs: &RoundObservation<'_>) -> ControlDecision {
        ControlDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimmer_sim::{NoInterference, WifiInterference, WifiLevel};

    fn sources(topo: &Topology, n: usize) -> Vec<NodeId> {
        (0..n)
            .map(|i| NodeId((topo.num_nodes() - 1 - i) as u16))
            .collect()
    }

    #[test]
    fn calm_epoch_delivers_everything_quickly() {
        let topo = Topology::dcube_48(1);
        let mut crystal = CrystalRunner::new(
            &topo,
            &NoInterference,
            CrystalConfig::ewsn2019(),
            NodeId(0),
            1,
        );
        let report = crystal.run_epoch(&sources(&topo, 5), SimDuration::from_secs(1));
        assert_eq!(report.reliability(), 1.0);
        assert!(
            report.ta_pairs <= 12,
            "calm epochs should terminate early, used {}",
            report.ta_pairs
        );
    }

    #[test]
    fn idle_epoch_costs_little_and_counts_as_reliable() {
        let topo = Topology::dcube_48(1);
        let mut crystal = CrystalRunner::new(
            &topo,
            &NoInterference,
            CrystalConfig::ewsn2019(),
            NodeId(0),
            2,
        );
        let busy = crystal.run_epoch(&sources(&topo, 5), SimDuration::from_secs(1));
        let idle = crystal.run_epoch(&[], SimDuration::from_secs(1));
        assert_eq!(idle.reliability(), 1.0);
        assert!(idle.energy_joules < busy.energy_joules);
        assert_eq!(crystal.epochs_run(), 2);
    }

    #[test]
    fn wifi_interference_is_survived_through_retransmissions() {
        let topo = Topology::dcube_48(1);
        let wifi = WifiInterference::new(WifiLevel::Level2, 5);
        let mut crystal = CrystalRunner::new(&topo, &wifi, CrystalConfig::ewsn2019(), NodeId(0), 3);
        let mut offered = 0;
        let mut delivered = 0;
        for _ in 0..20 {
            let r = crystal.run_epoch(&sources(&topo, 5), SimDuration::from_secs(1));
            offered += r.offered.len();
            delivered += r.delivered.len();
        }
        let reliability = delivered as f64 / offered as f64;
        assert!(
            reliability > 0.9,
            "Crystal should stay highly reliable under strong WiFi, got {reliability}"
        );
    }

    #[test]
    fn interference_costs_more_energy_than_calm() {
        let topo = Topology::dcube_48(1);
        let wifi = WifiInterference::new(WifiLevel::Level2, 7);
        let mut calm = CrystalRunner::new(
            &topo,
            &NoInterference,
            CrystalConfig::ewsn2019(),
            NodeId(0),
            4,
        );
        let mut noisy = CrystalRunner::new(&topo, &wifi, CrystalConfig::ewsn2019(), NodeId(0), 4);
        for _ in 0..10 {
            calm.run_epoch(&sources(&topo, 5), SimDuration::from_secs(1));
            noisy.run_epoch(&sources(&topo, 5), SimDuration::from_secs(1));
        }
        assert!(noisy.total_energy_joules() > calm.total_energy_joules());
    }

    #[test]
    fn cumulative_counters_are_consistent() {
        let topo = Topology::dcube_48(2);
        let mut crystal = CrystalRunner::new(
            &topo,
            &NoInterference,
            CrystalConfig::ewsn2019(),
            NodeId(0),
            9,
        );
        for _ in 0..5 {
            crystal.run_epoch(&sources(&topo, 3), SimDuration::from_secs(1));
        }
        assert!(crystal.app_reliability() > 0.95);
        assert!(crystal.total_energy_joules() > 0.0);
        assert_eq!(crystal.epochs_run(), 5);
    }
}
