//! The linter's own acceptance gate: the shipped workspace must be clean.
//!
//! This is the same check CI runs via `cargo run -p dimmer-lint -- --deny
//! --workspace`, wired in as a test so `cargo test` alone catches a
//! regression (a fresh unwrap, an allocation creeping into a hot region, a
//! doc drifting from the registry).

use dimmer_lint::lint_workspace;
use std::path::Path;

#[test]
fn live_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root");
    let findings = lint_workspace(root).expect("workspace walk succeeds");
    assert!(
        findings.is_empty(),
        "dimmer-lint found {} problem(s) in the live workspace:\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
