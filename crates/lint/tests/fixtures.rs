//! Fixture tests: one passing and one failing source per rule family,
//! checked against the exact rules each is built to exercise.

use dimmer_lint::drift::lint_drift;
use dimmer_lint::{lint_source, Finding, ScopeFlags};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn rules_in(name: &str) -> Vec<&'static str> {
    lint_source(name, &fixture(name), ScopeFlags::all())
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

#[test]
fn d_pass_is_clean() {
    assert_eq!(rules_in("d_pass.rs"), Vec::<&str>::new());
}

#[test]
fn d_fail_flags_every_entropy_source() {
    let rules = rules_in("d_fail.rs");
    for expected in ["D001", "D002", "D003", "D004"] {
        assert!(rules.contains(&expected), "missing {expected} in {rules:?}");
    }
    assert!(
        rules.iter().all(|r| r.starts_with('D')),
        "only D-rules expected, got {rules:?}"
    );
    assert_eq!(
        rules.iter().filter(|&&r| r == "D001").count(),
        2,
        "import and construction site both flagged"
    );
}

#[test]
fn h_pass_is_clean() {
    assert_eq!(rules_in("h_pass.rs"), Vec::<&str>::new());
}

#[test]
fn h_fail_flags_allocations_inside_the_region() {
    assert_eq!(rules_in("h_fail.rs"), vec!["H001", "H001"]);
}

#[test]
fn p_pass_is_clean() {
    assert_eq!(rules_in("p_pass.rs"), Vec::<&str>::new());
}

#[test]
fn p_fail_flags_unwrap_expect_and_panic() {
    assert_eq!(rules_in("p_fail.rs"), vec!["P001", "P001", "P002"]);
}

#[test]
fn scope_flags_gate_the_d_and_p_families() {
    // With both families off, even the fail fixtures are quiet (no hot
    // regions or directives are involved in d_fail/p_fail).
    let off = ScopeFlags::default();
    assert!(lint_source("d_fail.rs", &fixture("d_fail.rs"), off).is_empty());
    assert!(lint_source("p_fail.rs", &fixture("p_fail.rs"), off).is_empty());
}

fn fixture_tree(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

#[test]
fn s_pass_tree_has_no_drift() {
    let findings = lint_drift(&fixture_tree("s_pass"));
    assert!(findings.is_empty(), "unexpected drift: {findings:?}");
}

#[test]
fn s_fail_tree_drifts_in_every_family() {
    let findings = lint_drift(&fixture_tree("s_fail"));
    let rules_for =
        |rule: &str| -> Vec<&Finding> { findings.iter().filter(|f| f.rule == rule).collect() };

    // S001: exp_ghost exists but README.md never names it; exp_demo is fine.
    let s001 = rules_for("S001");
    assert_eq!(s001.len(), 1, "{findings:?}");
    assert!(s001[0].path.ends_with("exp_ghost.rs"));

    // S002: `beta` is registered but absent from both documents.
    let s002 = rules_for("S002");
    assert_eq!(s002.len(), 2, "{findings:?}");
    assert!(s002.iter().all(|f| f.message.contains("`beta`")));

    // S003: BENCH_flood.json declares the wrong suite, has an empty
    // benchmark list, and lacks a positive headline; BENCH_mystery.json
    // has no schema at all.
    let s003 = rules_for("S003");
    assert!(s003.iter().any(|f| f.message.contains("filename declares")));
    assert!(s003.iter().any(|f| f.message.contains("empty")));
    assert!(s003
        .iter()
        .any(|f| f.message.contains("flood_kernel_speedup")));
    assert!(s003
        .iter()
        .any(|f| f.path == "BENCH_mystery.json" && f.message.contains("no declared schema")));

    // S004: `drain` is in the COMMANDS list but absent from both
    // documents; `submit` is fine.
    let s004 = rules_for("S004");
    assert_eq!(s004.len(), 2, "{findings:?}");
    assert!(s004.iter().all(|f| f.message.contains("`drain`")));
    assert!(s004.iter().all(|f| f.path.ends_with("proto.rs")));

    // S005: ARCHITECTURE.md claims `patch_speedup: 3.1` while
    // BENCH_world.json records 2.6. (BENCH_flood.json has no usable
    // headline — that is S003's finding, not a second S005.)
    let s005 = rules_for("S005");
    assert_eq!(s005.len(), 1, "{findings:?}");
    assert_eq!(s005[0].path, "ARCHITECTURE.md");
    assert!(s005[0].message.contains("patch_speedup"));
    assert!(s005[0].message.contains("3.1"));
}
