//! The code-rule engine: D (determinism), H (hot path), P (panic hygiene)
//! and L (directive hygiene) rules over a single file's token stream.
//!
//! Rules are deliberately *shape* matchers over tokens — `.unwrap()` is
//! "dot, ident `unwrap`, open paren" — which is exactly as much syntax as
//! the invariants need and keeps the tool std-only (no `syn`). The
//! tokenizer already guarantees that strings, chars and comments can never
//! fire a rule, and [`lint_source`] additionally skips every item gated
//! behind `#[cfg(test)]` / `#[test]`: the invariants protect *shipped*
//! code, not tests, which unwrap freely by design.
//!
//! Which families run on a given file is the caller's choice via
//! [`ScopeFlags`]; crate-to-family mapping lives in [`crate::workspace`].

use crate::diag::Finding;
use crate::directives::{extract, Directive};
use crate::tokenizer::{tokenize, Token, TokenKind};

/// One entry of the rule catalogue.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable id (`D001`, …) used in diagnostics and `allow(…)` directives.
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line description for `--list-rules` and the docs.
    pub summary: &'static str,
}

/// The full rule catalogue, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "D001",
        name: "std-hash-collections",
        summary: "HashMap/HashSet iterate in RandomState order; use BTreeMap/BTreeSet or a Vec",
    },
    Rule {
        id: "D002",
        name: "wall-clock",
        summary: "Instant/SystemTime read the wall clock; derive time from SimTime/round counters",
    },
    Rule {
        id: "D003",
        name: "ambient-env",
        summary: "std::env reads make runs depend on the environment; thread config explicitly",
    },
    Rule {
        id: "D004",
        name: "entropy-rng",
        summary: "RNGs must be SimRng seeded via seed_from/split_seed/derive_seed, never entropy",
    },
    Rule {
        id: "H001",
        name: "hot-alloc",
        summary: "allocation-shaped call inside a `lint: hot-begin` region",
    },
    Rule {
        id: "H002",
        name: "hot-region",
        summary: "unbalanced or nested `lint: hot-begin`/`hot-end` markers",
    },
    Rule {
        id: "P001",
        name: "panic-unwrap",
        summary: "unwrap()/expect() in library code; return an error or allow(P001) with a reason",
    },
    Rule {
        id: "P002",
        name: "panic-macro",
        summary: "panic!/todo!/unimplemented!/unreachable! in library code",
    },
    Rule {
        id: "S001",
        name: "readme-repro-drift",
        summary: "every exp_* binary must appear in the README reproduction docs",
    },
    Rule {
        id: "S002",
        name: "registry-doc-drift",
        summary: "registry protocol names must appear in README.md and ARCHITECTURE.md",
    },
    Rule {
        id: "S003",
        name: "bench-schema-drift",
        summary: "BENCH_*.json reports must match their declared schema",
    },
    Rule {
        id: "S004",
        name: "protocol-doc-drift",
        summary: "dimmerd protocol commands must appear in README.md and ARCHITECTURE.md",
    },
    Rule {
        id: "S005",
        name: "headline-claim-drift",
        summary: "headline speedup claims in the docs must match the recorded BENCH_*.json value",
    },
    Rule {
        id: "L001",
        name: "malformed-directive",
        summary: "unparseable `// lint:` directive (unknown verb/rule, or allow missing a reason)",
    },
    Rule {
        id: "L002",
        name: "unused-allow",
        summary: "an allow(...) directive that suppressed nothing; delete it",
    },
];

/// Whether `id` names a rule in the catalogue.
pub fn rule_exists(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Which opt-in rule families run on a file. Hot-region (H) and directive
/// hygiene (L) rules always run — regions and allows are themselves opt-in
/// at the source level.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScopeFlags {
    /// Run D-rules (determinism) on this file.
    pub determinism: bool,
    /// Run P-rules (panic hygiene) on this file.
    pub panic_hygiene: bool,
}

impl ScopeFlags {
    /// Every family on: what fixtures and single-file invocations use.
    pub fn all() -> Self {
        ScopeFlags {
            determinism: true,
            panic_hygiene: true,
        }
    }
}

/// An `allow` directive with the set of lines it covers and a use marker.
struct AllowEntry {
    rule: String,
    /// The directive's own line and the next line holding code (for the
    /// standalone-comment form). Trailing-comment allows have both equal.
    lines: [u32; 2],
    used: bool,
}

/// A `hot-begin`/`hot-end` pair; code on lines strictly between is hot.
struct HotRegion {
    begin_line: u32,
    end_line: u32,
}

/// Lints one file's source text under the given scope.
///
/// `path` is only used to label findings. Findings come back in token
/// order; workspace-level sorting happens in the caller.
///
/// # Examples
///
/// ```
/// use dimmer_lint::rules::{lint_source, ScopeFlags};
/// let findings = lint_source("x.rs", "fn f(o: Option<u8>) -> u8 { o.unwrap() }", ScopeFlags::all());
/// assert_eq!(findings.len(), 1);
/// assert_eq!(findings[0].rule, "P001");
/// // The same shape inside #[cfg(test)] is fine:
/// let gated = "#[cfg(test)] mod t { fn f(o: Option<u8>) -> u8 { o.unwrap() } }";
/// assert!(lint_source("x.rs", gated, ScopeFlags::all()).is_empty());
/// ```
pub fn lint_source(path: &str, src: &str, scope: ScopeFlags) -> Vec<Finding> {
    let tokens = tokenize(src);
    let mut findings = Vec::new();

    // Directives: allows, hot regions, and L001 for the malformed.
    let (directives, malformed) = extract(&tokens);
    for m in malformed {
        findings.push(Finding {
            path: path.to_string(),
            line: m.line,
            col: m.col,
            rule: "L001",
            message: m.problem,
        });
    }

    // Code tokens only (comments out), preserving positions.
    let code: Vec<Token<'_>> = tokens.iter().filter(|t| !t.is_comment()).copied().collect();

    let mut allows = build_allows(&directives, &code);
    let regions = build_regions(&directives, path, &mut findings);
    let skip = test_gated_mask(&code);

    scan_code(
        path,
        &code,
        &skip,
        scope,
        &regions,
        &mut allows,
        &mut findings,
    );

    // L002: allows that suppressed nothing.
    for a in &allows {
        if !a.used {
            findings.push(Finding {
                path: path.to_string(),
                line: a.lines[0],
                col: 1,
                rule: "L002",
                message: format!(
                    "allow({}) suppressed nothing on lines {} or {}; delete it",
                    a.rule, a.lines[0], a.lines[1]
                ),
            });
        }
    }
    findings
}

/// Resolves each allow to the pair of lines it covers.
fn build_allows(directives: &[Directive], code: &[Token<'_>]) -> Vec<AllowEntry> {
    directives
        .iter()
        .filter_map(|d| match d {
            Directive::Allow { rule, line } => {
                // Standalone form: the next line that holds any code token.
                let next = code
                    .iter()
                    .map(|t| t.line)
                    .find(|&l| l > *line)
                    .unwrap_or(*line);
                Some(AllowEntry {
                    rule: rule.clone(),
                    lines: [*line, next],
                    used: false,
                })
            }
            _ => None,
        })
        .collect()
}

/// Pairs hot markers into regions, reporting imbalance as H002.
fn build_regions(
    directives: &[Directive],
    path: &str,
    findings: &mut Vec<Finding>,
) -> Vec<HotRegion> {
    let mut regions = Vec::new();
    let mut open: Option<u32> = None;
    for d in directives {
        match d {
            Directive::HotBegin { line } => {
                if let Some(b) = open {
                    findings.push(Finding {
                        path: path.to_string(),
                        line: *line,
                        col: 1,
                        rule: "H002",
                        message: format!("nested hot-begin (region already open since line {b})"),
                    });
                } else {
                    open = Some(*line);
                }
            }
            Directive::HotEnd { line } => match open.take() {
                Some(begin_line) => regions.push(HotRegion {
                    begin_line,
                    end_line: *line,
                }),
                None => findings.push(Finding {
                    path: path.to_string(),
                    line: *line,
                    col: 1,
                    rule: "H002",
                    message: "hot-end without a matching hot-begin".to_string(),
                }),
            },
            Directive::Allow { .. } => {}
        }
    }
    if let Some(b) = open {
        findings.push(Finding {
            path: path.to_string(),
            line: b,
            col: 1,
            rule: "H002",
            message: "hot-begin never closed before end of file".to_string(),
        });
    }
    regions
}

/// The set of source lines whose code tokens are test-gated. The drift
/// rules use this to ignore test-only artifacts (e.g. throwaway registry
/// registrations) without re-exposing the engine's token internals.
pub fn test_gated_lines(src: &str) -> std::collections::BTreeSet<u32> {
    let tokens = tokenize(src);
    let code: Vec<Token<'_>> = tokens.iter().filter(|t| !t.is_comment()).copied().collect();
    let skip = test_gated_mask(&code);
    code.iter()
        .zip(&skip)
        .filter(|(_, s)| **s)
        .map(|(t, _)| t.line)
        .collect()
}

/// Marks every code token inside a `#[cfg(test)]`- or `#[test]`-gated item.
fn test_gated_mask(code: &[Token<'_>]) -> Vec<bool> {
    let mut skip = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if !(code[i].is_punct("#") && code.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let (after, gated) = parse_attribute(code, i + 2);
        if !gated {
            i = after;
            continue;
        }
        // Swallow any further attributes on the same item
        // (`#[test] #[should_panic] fn …`).
        let mut j = after;
        while code.get(j).is_some_and(|t| t.is_punct("#"))
            && code.get(j + 1).is_some_and(|t| t.is_punct("["))
        {
            let (a, _) = parse_attribute(code, j + 2);
            j = a;
        }
        let end = item_end(code, j);
        for s in skip.iter_mut().take(end).skip(i) {
            *s = true;
        }
        i = end;
    }
    skip
}

/// From the first token after `#[`, returns (index after the closing `]`,
/// whether the attribute gates the item behind tests).
///
/// Test-gating attributes: `#[test]`, and `#[cfg(…)]` whose argument
/// mentions `test` without a leading `not` (`#[cfg(not(test))]` compiles
/// the item into shipped code, so it is *not* gated).
fn parse_attribute(code: &[Token<'_>], start: usize) -> (usize, bool) {
    let mut depth = 1usize; // the `[` already consumed
    let mut content = Vec::new();
    let mut i = start;
    while i < code.len() {
        let t = &code[i];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                i += 1;
                break;
            }
        }
        content.push(*t);
        i += 1;
    }
    let idents: Vec<&str> = content
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text)
        .collect();
    let gated = match idents.first() {
        Some(&"test") => content.len() == 1,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    };
    (i, gated)
}

/// From the first token of an item (past its attributes), returns the index
/// one past the item's end: the matching `}` of its first brace block, or a
/// top-level `;` for braceless items (`use …;`, `struct S;`).
fn item_end(code: &[Token<'_>], start: usize) -> usize {
    let mut depth = 0usize;
    let mut i = start;
    while i < code.len() {
        let t = &code[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        } else if t.is_punct(";") && depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    code.len()
}

/// Methods whose call allocates (or may allocate) — denied in hot regions.
const HOT_METHODS: &[&str] = &["clone", "to_vec", "to_owned", "to_string", "collect"];
/// `Type::ctor` pairs that allocate — denied in hot regions.
const HOT_TYPES: &[&str] = &["Vec", "Box", "String"];
const HOT_CTORS: &[&str] = &["new", "from", "with_capacity"];
/// Macros that allocate — denied in hot regions.
const HOT_MACROS: &[&str] = &["format", "vec"];
/// Entropy-based RNG constructors and randomly-seeded std types.
const ENTROPY_IDENTS: &[&str] = &[
    "from_entropy",
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "RandomState",
    "DefaultHasher",
    "getrandom",
];
/// `std::env` accessors matched in the bare `env::…` form.
const ENV_READS: &[&str] = &["var", "vars", "var_os", "args", "args_os", "current_dir"];

/// The token-shape scan proper.
#[allow(clippy::too_many_arguments)]
fn scan_code(
    path: &str,
    code: &[Token<'_>],
    skip: &[bool],
    scope: ScopeFlags,
    regions: &[HotRegion],
    allows: &mut [AllowEntry],
    findings: &mut Vec<Finding>,
) {
    let in_hot = |line: u32| {
        regions
            .iter()
            .any(|r| line > r.begin_line && line < r.end_line)
    };
    let mut emit = |tok: &Token<'_>, rule: &'static str, message: String| {
        // An allow for this rule covering this line suppresses the finding.
        // Of overlapping candidates (consecutive trailing allows each cover
        // their own line plus the next code line), the nearest one wins, so
        // each allow in a run of annotated lines gets credited as used.
        if let Some(a) = allows
            .iter_mut()
            .filter(|a| a.rule == rule && a.lines.contains(&tok.line))
            .max_by_key(|a| a.lines[0])
        {
            a.used = true;
            return;
        }
        findings.push(Finding {
            path: path.to_string(),
            line: tok.line,
            col: tok.col,
            rule,
            message,
        });
    };

    for i in 0..code.len() {
        if skip[i] {
            continue;
        }
        let t = &code[i];
        let prev = i.checked_sub(1).map(|p| &code[p]);
        let next = code.get(i + 1);
        let next2 = code.get(i + 2);

        if scope.determinism {
            // D001: std hash collections.
            if t.is_ident("HashMap") || t.is_ident("HashSet") {
                emit(
                    t,
                    "D001",
                    format!(
                        "{} iterates in RandomState order; use BTreeMap/BTreeSet or a Vec",
                        t.text
                    ),
                );
            }
            // D002: wall-clock reads.
            if t.is_ident("Instant") || t.is_ident("SystemTime") {
                emit(
                    t,
                    "D002",
                    format!(
                        "{} reads the wall clock; derive time from SimTime/round counters",
                        t.text
                    ),
                );
            }
            // D003: ambient environment reads. Two shapes: the `std::env`
            // path itself, and `env::<read>()` through a `use std::env`.
            if t.is_ident("std")
                && next.is_some_and(|n| n.is_punct("::"))
                && next2.is_some_and(|n| n.is_ident("env"))
            {
                emit(
                    t,
                    "D003",
                    "std::env read: runs must not depend on ambient environment".to_string(),
                );
            } else if t.is_ident("env")
                && next.is_some_and(|n| n.is_punct("::"))
                && next2.is_some_and(|n| n.kind == TokenKind::Ident && ENV_READS.contains(&n.text))
                && !prev.is_some_and(|p| p.is_punct("::"))
            {
                emit(
                    t,
                    "D003",
                    format!(
                        "env::{} read: runs must not depend on ambient environment",
                        next2.map_or("?", |n| n.text)
                    ),
                );
            }
            // D004: entropy-seeded RNG construction.
            if t.kind == TokenKind::Ident && ENTROPY_IDENTS.contains(&t.text) {
                emit(
                    t,
                    "D004",
                    format!(
                        "{}: construct RNGs only via SimRng::seed_from/split_seed/derive_seed",
                        t.text
                    ),
                );
            }
        }

        if scope.panic_hygiene {
            // P001: `.unwrap()` / `.expect(`.
            if prev.is_some_and(|p| p.is_punct("."))
                && (t.is_ident("unwrap") || t.is_ident("expect"))
                && next.is_some_and(|n| n.is_punct("("))
            {
                emit(
                    t,
                    "P001",
                    format!(
                        ".{}() in library code; return an error or allow(P001) with a reason",
                        t.text
                    ),
                );
            }
            // P002: panicking macros.
            if t.kind == TokenKind::Ident
                && ["panic", "todo", "unimplemented", "unreachable"].contains(&t.text)
                && next.is_some_and(|n| n.is_punct("!"))
            {
                emit(
                    t,
                    "P002",
                    format!("{}! in library code; return an error instead", t.text),
                );
            }
        }

        // H001: allocation shapes inside a hot region (always scanned —
        // regions are opt-in at the source level).
        if in_hot(t.line) {
            if prev.is_some_and(|p| p.is_punct("."))
                && t.kind == TokenKind::Ident
                && HOT_METHODS.contains(&t.text)
                && next.is_some_and(|n| n.is_punct("("))
            {
                emit(
                    t,
                    "H001",
                    format!(".{}() allocates inside a hot region", t.text),
                );
            }
            if t.kind == TokenKind::Ident
                && HOT_TYPES.contains(&t.text)
                && next.is_some_and(|n| n.is_punct("::"))
                && next2.is_some_and(|n| n.kind == TokenKind::Ident && HOT_CTORS.contains(&n.text))
                && code.get(i + 3).is_some_and(|n| n.is_punct("("))
            {
                emit(
                    t,
                    "H001",
                    format!(
                        "{}::{}() allocates inside a hot region",
                        t.text,
                        next2.map_or("?", |n| n.text)
                    ),
                );
            }
            if t.kind == TokenKind::Ident
                && HOT_MACROS.contains(&t.text)
                && next.is_some_and(|n| n.is_punct("!"))
            {
                emit(
                    t,
                    "H001",
                    format!("{}! allocates inside a hot region", t.text),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str) -> Vec<&'static str> {
        lint_source("t.rs", src, ScopeFlags::all())
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn d001_fires_on_hash_collections_only_in_code() {
        assert_eq!(rules_of("use std::collections::HashMap;"), vec!["D001"]);
        assert_eq!(rules_of("let s: HashSet<u8> = x;"), vec!["D001"]);
        assert!(rules_of("// HashMap in a comment\nlet s = \"HashMap\";").is_empty());
    }

    #[test]
    fn d002_fires_on_clock_reads() {
        assert_eq!(rules_of("let t = Instant::now();"), vec!["D002"]);
        assert_eq!(rules_of("use std::time::SystemTime;"), vec!["D002"]);
        assert!(rules_of("let t = SimTime::ZERO;").is_empty());
    }

    #[test]
    fn d003_fires_on_env_reads_once() {
        assert_eq!(rules_of("let p = std::env::var(\"X\");"), vec!["D003"]);
        assert_eq!(rules_of("let a = env::args();"), vec!["D003"]);
        // `env` as a field/var name does not fire.
        assert!(rules_of("let env = 3; touch(env);").is_empty());
    }

    #[test]
    fn d004_fires_on_entropy() {
        assert_eq!(rules_of("let r = StdRng::from_entropy();"), vec!["D004"]);
        assert_eq!(rules_of("let r = rand::thread_rng();"), vec!["D004"]);
        assert!(rules_of("let r = SimRng::seed_from(7);").is_empty());
    }

    #[test]
    fn p001_fires_on_unwrap_and_expect_calls_only() {
        assert_eq!(rules_of("x.unwrap();"), vec!["P001"]);
        assert_eq!(rules_of("x.expect(\"m\");"), vec!["P001"]);
        // Non-panicking relatives stay silent.
        assert!(rules_of("x.unwrap_or(3); x.unwrap_or_else(f); x.unwrap_or_default();").is_empty());
    }

    #[test]
    fn p002_fires_on_panicking_macros() {
        assert_eq!(rules_of("panic!(\"boom\");"), vec!["P002"]);
        assert_eq!(rules_of("todo!()"), vec!["P002"]);
        assert_eq!(rules_of("unreachable!()"), vec!["P002"]);
        // assert! and should_panic are fine.
        assert!(rules_of("assert!(x); debug_assert_eq!(a, b);").is_empty());
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n  fn f() { x.unwrap(); panic!(); }\n}\nfn g() { y.unwrap(); }";
        assert_eq!(rules_of(src), vec!["P001"]);
        let f = &lint_source("t.rs", src, ScopeFlags::all())[0];
        assert_eq!(f.line, 5);
    }

    #[test]
    fn consecutive_trailing_allows_all_count_as_used() {
        // Each trailing allow also covers the next code line; the nearest
        // allow must win or the second one is falsely flagged L002.
        let src = "fn f() {\n  a.unwrap(); // lint: allow(P001) -- fine\n  b.unwrap(); // lint: allow(P001) -- fine\n}";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn test_fn_with_extra_attributes_is_skipped() {
        let src = "#[test]\n#[should_panic(expected = \"x\")]\nfn f() { x.unwrap(); }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_skipped() {
        assert_eq!(
            rules_of("#[cfg(not(test))]\nfn f() { x.unwrap(); }"),
            vec!["P001"]
        );
    }

    #[test]
    fn hot_region_denies_alloc_shapes() {
        let src = "// lint: hot-begin\nlet v = Vec::new();\nlet c = x.clone();\nlet s = format!(\"x\");\n// lint: hot-end\nlet after = y.clone();";
        assert_eq!(rules_of(src), vec!["H001", "H001", "H001"]);
    }

    #[test]
    fn hot_region_markers_must_balance() {
        assert_eq!(rules_of("// lint: hot-begin\nx();"), vec!["H002"]);
        assert_eq!(rules_of("x();\n// lint: hot-end"), vec!["H002"]);
        assert_eq!(
            rules_of("// lint: hot-begin\n// lint: hot-begin\n// lint: hot-end"),
            vec!["H002"]
        );
    }

    #[test]
    fn allow_suppresses_on_same_line_and_next_line() {
        assert!(rules_of("x.unwrap(); // lint: allow(P001) -- checked above").is_empty());
        assert!(rules_of("// lint: allow(P001) -- checked above\nx.unwrap();").is_empty());
        // …but not two lines down: the unwrap fires and the allow is stale.
        let mut rules =
            rules_of("// lint: allow(P001) -- checked above\n\nlet ok = 1;\nx.unwrap();");
        rules.sort_unstable();
        assert_eq!(rules, vec!["L002", "P001"]);
    }

    #[test]
    fn unused_allow_is_reported() {
        assert_eq!(
            rules_of("// lint: allow(P001) -- stale\nlet x = 1;"),
            vec!["L002"]
        );
    }

    #[test]
    fn malformed_directive_is_l001() {
        assert_eq!(
            rules_of("// lint: allow(P001)\nx.unwrap();"),
            vec!["L001", "P001"]
        );
    }

    #[test]
    fn scope_flags_gate_families() {
        let d_only = ScopeFlags {
            determinism: true,
            panic_hygiene: false,
        };
        let src = "use std::collections::HashMap;\nx.unwrap();";
        let rules: Vec<_> = lint_source("t.rs", src, d_only)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        assert_eq!(rules, vec!["D001"]);
    }

    #[test]
    fn findings_carry_positions() {
        let f = &lint_source("t.rs", "fn f() {\n    x.unwrap();\n}", ScopeFlags::all())[0];
        assert_eq!((f.line, f.col), (2, 7));
        assert_eq!(f.render(), format!("t.rs:2:7 [P001] {}", f.message));
    }
}
