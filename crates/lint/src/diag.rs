//! The diagnostic type shared by every rule family and its renderers.

use std::fmt;

/// One lint finding, pointing at a specific token (or file-level artifact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path of the offending file, relative to the workspace root when
    /// produced by a workspace run.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Stable rule id (`D001`, `H001`, …).
    pub rule: &'static str,
    /// Human explanation; one sentence, actionable.
    pub message: String,
}

impl Finding {
    /// Renders the rustc-style single-line form:
    /// `path:line:col [RULE] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{} [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }

    /// Renders the finding as a JSON object (used by `--json`).
    pub fn render_json(&self) -> String {
        format!(
            r#"{{"path":{},"line":{},"col":{},"rule":"{}","message":{}}}"#,
            json_string(&self.path),
            self.line,
            self.col,
            self.rule,
            json_string(&self.message)
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Sorts findings into the stable reporting order: path, line, col, rule.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_matches_rustc_shape() {
        let f = Finding {
            path: "crates/sim/src/rng.rs".into(),
            line: 10,
            col: 5,
            rule: "D001",
            message: "no".into(),
        };
        assert_eq!(f.render(), "crates/sim/src/rng.rs:10:5 [D001] no");
        assert_eq!(f.to_string(), f.render());
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_string("\u{1}"), r#""\u0001""#);
    }

    #[test]
    fn sort_is_stable_over_all_keys() {
        let mk = |path: &str, line, col, rule: &'static str| Finding {
            path: path.into(),
            line,
            col,
            rule,
            message: String::new(),
        };
        let mut v = vec![
            mk("b.rs", 1, 1, "D001"),
            mk("a.rs", 2, 1, "P001"),
            mk("a.rs", 2, 1, "D001"),
            mk("a.rs", 1, 9, "H001"),
        ];
        sort_findings(&mut v);
        let order: Vec<_> = v.iter().map(|f| f.render()).collect();
        assert_eq!(
            order,
            vec![
                "a.rs:1:9 [H001] ",
                "a.rs:2:1 [D001] ",
                "a.rs:2:1 [P001] ",
                "b.rs:1:1 [D001] "
            ]
        );
    }
}
