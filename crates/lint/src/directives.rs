//! `// lint: …` directive parsing.
//!
//! Directives are the only channel through which source code talks back to
//! the linter. Three verbs exist:
//!
//! * `// lint: hot-begin` / `// lint: hot-end` — delimit a *hot region*
//!   inside which allocation-shaped calls are denied (rule `H001`);
//! * `// lint: allow(RULE) -- <reason>` — suppress `RULE` on the directive's
//!   line (trailing form) or on the next line holding code (standalone
//!   form). The reason is **mandatory**: an allow without one is itself a
//!   diagnostic (`L001`), because an unexplained suppression is exactly the
//!   kind of drift this tool exists to stop.
//!
//! Only plain `//` comments carry directives — doc comments (`///`, `//!`)
//! are rendered documentation and must stay prose.

use crate::rules::rule_exists;
use crate::tokenizer::{Token, TokenKind};

/// A parsed, validated directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `allow(RULE) -- reason`: suppress `rule` near `line`.
    Allow {
        /// The rule id being suppressed (validated to exist).
        rule: String,
        /// Line the directive comment starts on.
        line: u32,
    },
    /// `hot-begin`: opens a hot region after `line`.
    HotBegin {
        /// Line of the marker comment.
        line: u32,
    },
    /// `hot-end`: closes the current hot region at `line`.
    HotEnd {
        /// Line of the marker comment.
        line: u32,
    },
}

/// A directive that failed validation — reported as rule `L001`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedDirective {
    /// Line of the offending comment.
    pub line: u32,
    /// Column of the offending comment.
    pub col: u32,
    /// Human explanation of what is wrong.
    pub problem: String,
}

/// Extracts every directive from the comment tokens of a file.
///
/// Returns the well-formed directives and the malformed ones separately so
/// the caller can turn the latter into `L001` findings.
pub fn extract(tokens: &[Token<'_>]) -> (Vec<Directive>, Vec<MalformedDirective>) {
    let mut directives = Vec::new();
    let mut malformed = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        // `//` yes, `///` / `//!` no.
        let body = &t.text[2..];
        if body.starts_with('/') || body.starts_with('!') {
            continue;
        }
        let Some(rest) = body.trim_start().strip_prefix("lint:") else {
            continue;
        };
        match parse_body(rest.trim(), t.line) {
            Ok(d) => directives.push(d),
            Err(problem) => malformed.push(MalformedDirective {
                line: t.line,
                col: t.col,
                problem,
            }),
        }
    }
    (directives, malformed)
}

fn parse_body(body: &str, line: u32) -> Result<Directive, String> {
    if body == "hot-begin" {
        return Ok(Directive::HotBegin { line });
    }
    if body == "hot-end" {
        return Ok(Directive::HotEnd { line });
    }
    if let Some(rest) = body.strip_prefix("allow") {
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            return Err("allow needs a parenthesised rule id: `allow(RULE) -- reason`".into());
        };
        let Some((rule, rest)) = rest.split_once(')') else {
            return Err("unclosed `(` in allow directive".into());
        };
        let rule = rule.trim();
        if !rule_exists(rule) {
            return Err(format!("unknown rule id `{rule}` in allow directive"));
        }
        let rest = rest.trim_start();
        let Some(reason) = rest.strip_prefix("--") else {
            return Err(format!(
                "allow({rule}) is missing its mandatory reason: `allow({rule}) -- <why>`"
            ));
        };
        if reason.trim().is_empty() {
            return Err(format!("allow({rule}) has an empty reason after `--`"));
        }
        return Ok(Directive::Allow {
            rule: rule.to_string(),
            line,
        });
    }
    Err(format!(
        "unknown lint directive `{body}` (expected `hot-begin`, `hot-end` or `allow(RULE) -- reason`)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn parse(src: &str) -> (Vec<Directive>, Vec<MalformedDirective>) {
        extract(&tokenize(src))
    }

    #[test]
    fn hot_markers_parse() {
        let (d, m) = parse("// lint: hot-begin\nx();\n// lint: hot-end\n");
        assert!(m.is_empty());
        assert_eq!(
            d,
            vec![
                Directive::HotBegin { line: 1 },
                Directive::HotEnd { line: 3 }
            ]
        );
    }

    #[test]
    fn allow_with_reason_parses() {
        let (d, m) = parse("x.unwrap(); // lint: allow(P001) -- len checked above\n");
        assert!(m.is_empty());
        assert_eq!(
            d,
            vec![Directive::Allow {
                rule: "P001".into(),
                line: 1
            }]
        );
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let (d, m) = parse("// lint: allow(P001)\n");
        assert!(d.is_empty());
        assert_eq!(m.len(), 1);
        assert!(
            m[0].problem.contains("mandatory reason"),
            "{}",
            m[0].problem
        );
    }

    #[test]
    fn allow_with_empty_reason_is_malformed() {
        let (_, m) = parse("// lint: allow(P001) --   \n");
        assert_eq!(m.len(), 1);
        assert!(m[0].problem.contains("empty reason"));
    }

    #[test]
    fn unknown_rule_is_malformed() {
        let (_, m) = parse("// lint: allow(Z999) -- whatever\n");
        assert_eq!(m.len(), 1);
        assert!(m[0].problem.contains("unknown rule id"));
    }

    #[test]
    fn unknown_verb_is_malformed() {
        let (_, m) = parse("// lint: hot-middle\n");
        assert_eq!(m.len(), 1);
        assert!(m[0].problem.contains("unknown lint directive"));
    }

    #[test]
    fn doc_comments_and_plain_comments_are_ignored() {
        let (d, m) = parse("/// lint: hot-begin\n//! lint: hot-end\n// just words\n");
        assert!(d.is_empty());
        assert!(m.is_empty());
    }
}
