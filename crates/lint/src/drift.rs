//! S-rules: drift checks between code artifacts and the documents that
//! describe them.
//!
//! Unlike the token rules, these are *workspace-level* — each check reads
//! several files and compares them:
//!
//! * **S001** — every `exp_*` binary under `crates/bench/src/bin/` must be
//!   mentioned in `README.md` (the reproduction guide is the contract for
//!   how results are regenerated; an undocumented binary is dead weight or
//!   missing docs).
//! * **S002** — every protocol name registered in the non-test code of
//!   `crates/baselines/src/registry.rs` must appear in both `README.md`
//!   and `ARCHITECTURE.md` (the registry is the single source of protocol
//!   names for `--protocols`; docs must track it).
//! * **S003** — every `BENCH_*.json` at the workspace root must parse and
//!   match its declared schema (`suite` matching the filename, a non-empty
//!   `benchmarks` array of `{name, mean_ns, iters}`, and the suite's
//!   headline speedup field, positive).
//! * **S004** — every wire-protocol command in the `COMMANDS` list of
//!   `crates/dimmerd/src/proto.rs` must appear in both `README.md` and
//!   `ARCHITECTURE.md` (the daemon protocol is an external contract; an
//!   undocumented command is unusable, a documented-but-removed one is a
//!   broken promise).
//! * **S005** — every headline speedup claim in `README.md` /
//!   `ARCHITECTURE.md` (a `<headline_field>: <number>` phrase, e.g.
//!   `` `flood_kernel_speedup: 1.87` ``) must match the value recorded in
//!   the corresponding `BENCH_*.json` at the precision the doc states.
//!   Prose numbers went stale once (the docs kept quoting a speedup band
//!   from an earlier kernel); the recorded report is the single source of
//!   truth.

use crate::diag::Finding;
use crate::json::{self, Json};
use crate::tokenizer::{tokenize, TokenKind};
use std::path::Path;

/// Runs every S-rule against the workspace at `root`.
pub fn lint_drift(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_readme_repro(root, &mut findings);
    check_registry_docs(root, &mut findings);
    check_bench_schemas(root, &mut findings);
    check_daemon_protocol_docs(root, &mut findings);
    check_headline_claims(root, &mut findings);
    findings
}

fn file_finding(path: &str, rule: &'static str, message: String) -> Finding {
    Finding {
        path: path.to_string(),
        line: 1,
        col: 1,
        rule,
        message,
    }
}

/// S001: every `exp_*` binary appears in README.md.
fn check_readme_repro(root: &Path, findings: &mut Vec<Finding>) {
    let bin_dir = root.join("crates/bench/src/bin");
    let Ok(entries) = std::fs::read_dir(&bin_dir) else {
        return; // no bin dir, nothing to check (fixture trees may omit it)
    };
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap_or_default();
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.strip_suffix(".rs").map(str::to_string)
        })
        .filter(|n| n.starts_with("exp_"))
        .collect();
    names.sort_unstable();
    for name in names {
        if !contains_word(&readme, &name) {
            findings.push(file_finding(
                &format!("crates/bench/src/bin/{name}.rs"),
                "S001",
                format!("binary `{name}` is not mentioned in README.md's reproduction docs"),
            ));
        }
    }
}

/// S002: registered protocol names appear in README.md and ARCHITECTURE.md.
fn check_registry_docs(root: &Path, findings: &mut Vec<Finding>) {
    let reg_path = "crates/baselines/src/registry.rs";
    let Ok(src) = std::fs::read_to_string(root.join(reg_path)) else {
        return;
    };
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap_or_default();
    let arch = std::fs::read_to_string(root.join("ARCHITECTURE.md")).unwrap_or_default();

    for (name, line) in registered_names(&src) {
        for (doc, text) in [("README.md", &readme), ("ARCHITECTURE.md", &arch)] {
            if !contains_word(text, &name) {
                findings.push(Finding {
                    path: reg_path.to_string(),
                    line,
                    col: 1,
                    rule: "S002",
                    message: format!("registry protocol `{name}` is not documented in {doc}"),
                });
            }
        }
    }
}

/// Extracts `(name, line)` for every `register("name", …)` call in the
/// non-test code of the registry source.
///
/// Test-gated registrations (fixtures registering throwaway protocols)
/// deliberately don't count — only shipped names need documentation.
pub fn registered_names(src: &str) -> Vec<(String, u32)> {
    let tokens = tokenize(src);
    let code: Vec<_> = tokens.iter().filter(|t| !t.is_comment()).collect();
    // Reuse the same test-gating logic as the code rules by line spans:
    // a simple rebuild here avoids exposing engine internals.
    let gated = crate::rules::test_gated_lines(src);
    let mut out = Vec::new();
    for i in 0..code.len() {
        if code[i].is_ident("register")
            && code.get(i + 1).is_some_and(|t| t.is_punct("("))
            && code.get(i + 2).is_some_and(|t| t.kind == TokenKind::Str)
            && !gated.contains(&code[i].line)
        {
            let quoted = code[i + 2].text;
            let name = quoted.trim_matches('"').to_string();
            out.push((name, code[i].line));
        }
    }
    out
}

/// S004: the daemon's wire-protocol commands appear in README.md and
/// ARCHITECTURE.md.
fn check_daemon_protocol_docs(root: &Path, findings: &mut Vec<Finding>) {
    let proto_path = "crates/dimmerd/src/proto.rs";
    let Ok(src) = std::fs::read_to_string(root.join(proto_path)) else {
        return; // no daemon crate (fixture trees may omit it)
    };
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap_or_default();
    let arch = std::fs::read_to_string(root.join("ARCHITECTURE.md")).unwrap_or_default();

    for (name, line) in protocol_commands(&src) {
        for (doc, text) in [("README.md", &readme), ("ARCHITECTURE.md", &arch)] {
            if !contains_word(text, &name) {
                findings.push(Finding {
                    path: proto_path.to_string(),
                    line,
                    col: 1,
                    rule: "S004",
                    message: format!("daemon protocol command `{name}` is not documented in {doc}"),
                });
            }
        }
    }
}

/// Extracts `(command, line)` for every string literal in the `COMMANDS`
/// array of the daemon's protocol source (non-test code only).
pub fn protocol_commands(src: &str) -> Vec<(String, u32)> {
    let tokens = tokenize(src);
    let code: Vec<_> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let gated = crate::rules::test_gated_lines(src);
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        // Only the `const COMMANDS` definition counts — later uses of the
        // ident (error messages, dispatch loops) are not the catalogue.
        if code[i].is_ident("COMMANDS")
            && i > 0
            && code[i - 1].is_ident("const")
            && !gated.contains(&code[i].line)
        {
            // Collect the string literals of the initializer, up to `;`.
            let mut j = i + 1;
            while j < code.len() && !code[j].is_punct(";") {
                if code[j].kind == TokenKind::Str {
                    let name = code[j].text.trim_matches('"').to_string();
                    out.push((name, code[j].line));
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    out
}

/// Word-ish containment: `needle` present and not embedded in a larger
/// identifier (so `exp_fig5` is not satisfied by `exp_fig5b`).
fn contains_word(haystack: &str, needle: &str) -> bool {
    let boundary =
        |c: Option<char>| c.is_none_or(|c| !(c.is_alphanumeric() || c == '_' || c == '-'));
    let mut from = 0;
    while let Some(idx) = haystack[from..].find(needle) {
        let at = from + idx;
        let before = haystack[..at].chars().next_back();
        let after = haystack[at + needle.len()..].chars().next();
        if boundary(before) && boundary(after) {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// S003: `BENCH_*.json` files match their declared schema.
fn check_bench_schemas(root: &Path, findings: &mut Vec<Finding>) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    let mut reports: Vec<String> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    reports.sort_unstable();
    for file in reports {
        let suite = file
            .trim_start_matches("BENCH_")
            .trim_end_matches(".json")
            .to_string();
        let text = std::fs::read_to_string(root.join(&file)).unwrap_or_default();
        for problem in schema_problems(&suite, &text) {
            findings.push(file_finding(&file, "S003", problem));
        }
    }
}

/// Validates one report body against the schema its filename declares.
/// Returns every problem found (empty = conforming).
pub fn schema_problems(suite: &str, text: &str) -> Vec<String> {
    let headline = match suite {
        "flood" => "flood_kernel_speedup",
        "world" => "patch_speedup",
        other => {
            return vec![format!(
                "no declared schema for suite `{other}`; add one to dimmer-lint's S003 table"
            )]
        }
    };
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return vec![format!("not valid JSON: {e}")],
    };
    let mut problems = Vec::new();
    match doc.get("suite").and_then(Json::as_str) {
        Some(s) if s == suite => {}
        Some(s) => problems.push(format!(
            "`suite` is \"{s}\" but the filename declares \"{suite}\""
        )),
        None => problems.push("missing string field `suite`".to_string()),
    }
    match doc.get("benchmarks").and_then(Json::as_arr) {
        Some([]) => problems.push("`benchmarks` array is empty".to_string()),
        Some(benches) => {
            for (i, b) in benches.iter().enumerate() {
                if b.get("name").and_then(Json::as_str).is_none() {
                    problems.push(format!("benchmarks[{i}] is missing string field `name`"));
                }
                for field in ["mean_ns", "iters"] {
                    if b.get(field).and_then(Json::as_num).is_none() {
                        problems.push(format!(
                            "benchmarks[{i}] is missing numeric field `{field}`"
                        ));
                    }
                }
            }
        }
        None => problems.push("missing array field `benchmarks`".to_string()),
    }
    match doc.get(headline).and_then(Json::as_num) {
        Some(v) if v > 0.0 => {}
        Some(v) => problems.push(format!("`{headline}` must be positive, got {v}")),
        None => problems.push(format!("missing numeric field `{headline}`")),
    }
    problems
}

/// The headline field each suite's report records (shared with S003).
const HEADLINES: &[(&str, &str)] = &[
    ("flood", "flood_kernel_speedup"),
    ("world", "patch_speedup"),
];

/// S005: headline speedup claims in the docs match the recorded value.
///
/// A *claim* is the headline field name followed by a number —
/// `flood_kernel_speedup: 1.87`, optionally wrapped in backticks or using
/// `=` — anywhere in README.md or ARCHITECTURE.md. The claim must equal
/// the recorded JSON value rounded to the precision the doc states, so
/// `1.87` accepts a recorded `1.8704` but a doc still quoting `2.05`
/// fails the moment the committed report moves.
fn check_headline_claims(root: &Path, findings: &mut Vec<Finding>) {
    for (suite, headline) in HEADLINES {
        let file = format!("BENCH_{suite}.json");
        let Ok(text) = std::fs::read_to_string(root.join(&file)) else {
            continue; // no report, nothing to cross-check
        };
        let Ok(doc) = json::parse(&text) else {
            continue; // S003 already reports unparseable reports
        };
        let Some(recorded) = doc.get(headline).and_then(Json::as_num) else {
            continue; // S003 already reports the missing headline field
        };
        for name in ["README.md", "ARCHITECTURE.md"] {
            let Ok(body) = std::fs::read_to_string(root.join(name)) else {
                continue;
            };
            for (line, stated) in headline_claims(&body, headline) {
                if !claim_matches(recorded, &stated) {
                    findings.push(Finding {
                        path: name.to_string(),
                        line,
                        col: 1,
                        rule: "S005",
                        message: format!(
                            "doc claims `{headline}: {stated}` but {file} records {recorded}"
                        ),
                    });
                }
            }
        }
    }
}

/// Extracts `(line, stated_number)` for every headline claim in a doc: an
/// occurrence of `field` followed (through optional backticks/spaces and a
/// `:` or `=`) by a decimal number. Mentions without a number — e.g. prose
/// explaining what the field *is* — are not claims.
pub fn headline_claims(body: &str, field: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (lineno, line) in body.lines().enumerate() {
        let mut from = 0;
        while let Some(idx) = line[from..].find(field) {
            let at = from + idx;
            from = at + field.len();
            let before = line[..at].chars().next_back();
            if before.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                continue; // embedded in a longer identifier
            }
            let rest = &line[at + field.len()..];
            let rest = rest.trim_start_matches(['`', ' ']);
            let Some(rest) = rest.strip_prefix([':', '=']) else {
                continue;
            };
            let rest = rest.trim_start_matches(['`', ' ']);
            let number: String = rest
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .collect();
            if !number.is_empty() && number.chars().any(|c| c.is_ascii_digit()) {
                out.push((lineno as u32 + 1, number));
            }
        }
    }
    out
}

/// Whether the recorded value, rounded to the decimals the doc states,
/// reproduces the stated number exactly.
pub fn claim_matches(recorded: f64, stated: &str) -> bool {
    let decimals = stated
        .split_once('.')
        .map(|(_, frac)| frac.len())
        .unwrap_or(0);
    format!("{recorded:.decimals$}") == stated
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_names_skips_tests_and_comments() {
        let src = r#"
fn defaults() {
    reg.register("dimmer-dqn", "x", build);
    reg.register(
        "pid",
        "y",
        build,
    );
}
// reg.register("commented-out", "x", build);
#[cfg(test)]
mod tests {
    fn t() { reg.register("static-5", "z", build); }
}
"#;
        let names: Vec<String> = registered_names(src).into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["dimmer-dqn", "pid"]);
    }

    #[test]
    fn protocol_commands_reads_the_commands_list_only() {
        let src = r#"
pub const COMMANDS: &[&str] = &["submit", "status", "result"];
pub fn parse(line: &str) -> Result<Request, String> {
    let other = ["not-a-command"];
    let listed = COMMANDS.join(", ");
    Err("unknown".to_string())
}
#[cfg(test)]
mod tests {
    const COMMANDS: &[&str] = &["test-only"];
}
"#;
        let names: Vec<String> = protocol_commands(src).into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["submit", "status", "result"]);
    }

    #[test]
    fn contains_word_respects_boundaries() {
        assert!(contains_word("run `exp_fig5` to reproduce", "exp_fig5"));
        assert!(!contains_word("only exp_fig5b here", "exp_fig5"));
        assert!(contains_word("protocols: static,dimmer-dqn", "static"));
        assert!(!contains_word("statics everywhere", "static"));
        assert!(!contains_word("dimmer-dqn2", "dimmer-dqn"));
    }

    #[test]
    fn headline_claims_parses_only_numbered_mentions() {
        let body = "\
The kernel is `flood_kernel_speedup: 1.87` under jamming.\n\
Reading the JSON: `flood_kernel_speedup` is the headline field.\n\
Also stated as flood_kernel_speedup = 2.3 here.\n\
But not_flood_kernel_speedup: 9.9 is a different identifier.\n";
        let claims = headline_claims(body, "flood_kernel_speedup");
        assert_eq!(
            claims,
            vec![(1, "1.87".to_string()), (3, "2.3".to_string())]
        );
    }

    #[test]
    fn claim_matching_uses_the_stated_precision() {
        assert!(claim_matches(1.8704, "1.87"));
        assert!(claim_matches(1.87, "1.9"));
        assert!(claim_matches(2.0, "2"));
        assert!(!claim_matches(2.05, "1.87"));
        assert!(!claim_matches(1.87, "1.88"));
    }

    #[test]
    fn schema_accepts_a_conforming_flood_report() {
        let body = r#"{"suite":"flood","benchmarks":[{"name":"a","mean_ns":1.0,"iters":2}],"flood_kernel_speedup":2.5}"#;
        assert!(schema_problems("flood", body).is_empty());
    }

    #[test]
    fn schema_rejects_drifted_reports() {
        let wrong_suite = r#"{"suite":"world","benchmarks":[{"name":"a","mean_ns":1.0,"iters":2}],"flood_kernel_speedup":2.5}"#;
        assert!(schema_problems("flood", wrong_suite)
            .iter()
            .any(|p| p.contains("filename declares")));
        let empty = r#"{"suite":"flood","benchmarks":[],"flood_kernel_speedup":2.5}"#;
        assert!(schema_problems("flood", empty)
            .iter()
            .any(|p| p.contains("empty")));
        let no_headline =
            r#"{"suite":"world","benchmarks":[{"name":"a","mean_ns":1.0,"iters":2}]}"#;
        assert!(schema_problems("world", no_headline)
            .iter()
            .any(|p| p.contains("patch_speedup")));
        assert!(schema_problems("flood", "{oops")
            .iter()
            .any(|p| p.contains("not valid JSON")));
        assert!(!schema_problems("mystery", "{}").is_empty());
    }
}
