//! Workspace walking and crate→rule-family scoping.
//!
//! The scoping table is the policy heart of the tool:
//!
//! * **D-rules** run on the simulation/engine/bench crates — the code whose
//!   byte-for-byte determinism the equivalence suites pin — on the
//!   `dimmerd` daemon, whose served reports must be byte-identical to
//!   offline runs, and on `rl`, whose training farm promises
//!   byte-identical curves and weights for any environment count
//!   (`tests/tests/training_farm.rs`). The neural/trace crates are
//!   deliberately out of D-scope for now (they read nothing ambient
//!   either, but they never run inside a pinned trial).
//! * **P-rules** run on every library crate (including `dimmer-lint`
//!   itself — the tool holds itself to its own hygiene), but not on
//!   `src/bin/` CLI entry points, which may terminate on bad input.
//! * **H- and L-rules** run everywhere a file is scanned at all: hot
//!   regions and allow directives are opt-in at the source level.
//!
//! Scanned roots: every `crates/<name>/src` tree plus the root umbrella
//! `src/`. Benches, examples, the integration-test crate and `vendor/` are
//! not scanned — they are test/bench-only code by construction.

use crate::diag::{sort_findings, Finding};
use crate::drift::lint_drift;
use crate::rules::{lint_source, ScopeFlags};
use std::path::{Path, PathBuf};

/// Crates whose non-test code must be deterministic (D-rules).
pub const D_CRATES: &[&str] = &[
    "sim",
    "glossy",
    "core",
    "lwb",
    "baselines",
    "rl",
    "bench",
    "dimmerd",
];

/// Crates whose non-test library code must not panic (P-rules).
pub const P_CRATES: &[&str] = &[
    "sim",
    "glossy",
    "core",
    "lwb",
    "baselines",
    "neural",
    "rl",
    "traces",
    "bench",
    "lint",
    "dimmerd",
];

/// The rule families that apply to a workspace-relative `.rs` path, or
/// `None` if the file is outside every scanned root.
///
/// # Examples
///
/// ```
/// use dimmer_lint::workspace::scope_for;
/// use std::path::Path;
/// let sim = scope_for(Path::new("crates/sim/src/rng.rs")).expect("scanned");
/// assert!(sim.determinism && sim.panic_hygiene);
/// // CLI binaries keep D-rules but may panic:
/// let bin = scope_for(Path::new("crates/bench/src/bin/exp_fig5.rs")).expect("scanned");
/// assert!(bin.determinism && !bin.panic_hygiene);
/// assert!(scope_for(Path::new("vendor/rand/src/lib.rs")).is_none());
/// ```
pub fn scope_for(rel: &Path) -> Option<ScopeFlags> {
    let parts: Vec<&str> = rel
        .components()
        .map(|c| c.as_os_str().to_str().unwrap_or(""))
        .collect();
    match parts.as_slice() {
        ["crates", krate, "src", rest @ ..] if !rest.is_empty() => {
            let is_bin = rest.first() == Some(&"bin");
            Some(ScopeFlags {
                determinism: D_CRATES.contains(krate),
                panic_hygiene: P_CRATES.contains(krate) && !is_bin,
            })
        }
        // Root umbrella `src/lib.rs`: H/L only.
        ["src", rest @ ..] if !rest.is_empty() => Some(ScopeFlags::default()),
        _ => None,
    }
}

/// Recursively collects every `.rs` file under `dir`, sorted, as paths
/// relative to `root`.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

/// Every workspace-relative `.rs` path the linter scans, sorted.
pub fn scanned_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(root, &src, &mut files)?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(root, &root_src, &mut files)?;
    }
    Ok(files)
}

/// Lints the whole workspace at `root`: every scanned file under its scope,
/// plus the drift (S) rules. Findings come back in stable sorted order.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for rel in scanned_files(root)? {
        let Some(scope) = scope_for(&rel) else {
            continue;
        };
        let abs = root.join(&rel);
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        // Paths in findings use `/` regardless of host for stable output.
        let label = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        findings.extend(lint_source(&label, &src, scope));
    }
    findings.extend(lint_drift(root));
    sort_findings(&mut findings);
    Ok(findings)
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` — how the CLI finds the root when invoked from
/// a subdirectory.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_table_matches_the_policy() {
        let case = |p: &str| scope_for(Path::new(p));
        // Simulation crates: both families.
        for p in [
            "crates/sim/src/rng.rs",
            "crates/glossy/src/flood.rs",
            "crates/core/src/engine.rs",
            "crates/lwb/src/round.rs",
            "crates/baselines/src/registry.rs",
            "crates/bench/src/harness.rs",
            "crates/dimmerd/src/service.rs",
            "crates/rl/src/dqn.rs",
            "crates/rl/src/farm.rs",
        ] {
            let s = case(p).expect("scanned");
            assert!(s.determinism && s.panic_hygiene, "{p}");
        }
        // Library-only crates: P without D.
        for p in [
            "crates/neural/src/mlp.rs",
            "crates/traces/src/dataset.rs",
            "crates/lint/src/rules.rs",
        ] {
            let s = case(p).expect("scanned");
            assert!(!s.determinism && s.panic_hygiene, "{p}");
        }
        // Bench and daemon binaries: D without P.
        let b = case("crates/bench/src/bin/exp_fig5.rs").expect("scanned");
        assert!(b.determinism && !b.panic_hygiene);
        let d = case("crates/dimmerd/src/bin/dimmer_cli.rs").expect("scanned");
        assert!(d.determinism && !d.panic_hygiene);
        // Lint's own binary: neither family (H/L still run).
        let l = case("crates/lint/src/bin/x.rs").expect("scanned");
        assert!(!l.determinism && !l.panic_hygiene);
        // Umbrella src: H/L only.
        let u = case("src/lib.rs").expect("scanned");
        assert!(!u.determinism && !u.panic_hygiene);
        // Out of scope entirely.
        assert!(case("vendor/rand/src/lib.rs").is_none());
        assert!(case("tests/tests/engine_equivalence.rs").is_none());
        assert!(case("crates/bench/benches/flood.rs").is_none());
        assert!(case("examples/quickstart.rs").is_none());
    }

    #[test]
    fn find_root_walks_up_from_here() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root above the lint crate");
        assert!(root.join("crates/lint/Cargo.toml").is_file());
    }
}
