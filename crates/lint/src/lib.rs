//! `dimmer-lint` — workspace-wide determinism & hot-path static analysis.
//!
//! Every claim this repository makes rests on determinism: the flood
//! kernel is pinned byte-for-byte to its reference, static worlds are
//! pinned by golden digests, and harness JSON is byte-identical for any
//! `--threads`. Those invariants are enforced *dynamically* by the
//! equivalence suites — but nothing stops a future change from quietly
//! introducing a `HashMap` iteration, an entropy-seeded RNG, or a per-slot
//! allocation until a golden test flakes much later. This crate is the
//! static complement: a std-only analysis pass (no `syn`, no clippy
//! plugins — the build is offline) that walks the workspace and enforces
//! repo-specific invariants clippy cannot express.
//!
//! # Rule families
//!
//! | Family | Rules | What they protect |
//! |--------|-------|-------------------|
//! | **D** (determinism) | `D001`–`D004` | no `HashMap`/`HashSet`, no wall-clock, no `std::env`, no entropy RNGs in the simulation crates |
//! | **H** (hot path) | `H001`–`H002` | no allocation-shaped calls inside `// lint: hot-begin` … `// lint: hot-end` regions (the flood slot loop, `CompiledTopology::apply_event`, `RoundExecutor::run_round`) |
//! | **P** (panic hygiene) | `P001`–`P002` | no `unwrap`/`expect`/`panic!` in library crates outside tests |
//! | **S** (drift) | `S001`–`S005` | docs, `BENCH_*.json` reports, headline speedup claims and the daemon protocol track the code they describe |
//! | **L** (directive hygiene) | `L001`–`L002` | `// lint:` directives parse, and every `allow` earns its keep |
//!
//! The escape hatch is `// lint: allow(RULE) -- <reason>`; the reason is
//! mandatory and an allow that suppresses nothing is itself an error. See
//! the "Static analysis & determinism invariants" chapter of
//! ARCHITECTURE.md for the full catalogue and directive syntax.
//!
//! # Library surface
//!
//! The binary (`cargo run -p dimmer-lint -- --deny --workspace`) is a thin
//! shell over [`workspace::lint_workspace`]; fixture tests drive
//! [`rules::lint_source`] and [`drift::schema_problems`] directly.
//!
//! ```
//! use dimmer_lint::rules::{lint_source, ScopeFlags};
//! let bad = "fn f() { let t = std::time::Instant::now(); }";
//! let findings = lint_source("demo.rs", bad, ScopeFlags::all());
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "D002");
//! ```
#![deny(missing_docs)]

pub mod diag;
pub mod directives;
pub mod drift;
pub mod json;
pub mod rules;
pub mod tokenizer;
pub mod workspace;

pub use diag::Finding;
pub use rules::{lint_source, ScopeFlags, RULES};
pub use workspace::lint_workspace;
