//! The `dimmer-lint` CLI.
//!
//! ```text
//! dimmer-lint --workspace [--deny] [--json] [--root PATH]
//! dimmer-lint [--deny] [--json] FILE…
//! dimmer-lint --list-rules
//! ```
//!
//! `--workspace` lints every scanned crate plus the drift rules;
//! explicit `FILE` arguments are linted with every code-rule family on
//! (the mode fixture tooling uses). `--deny` turns findings into exit
//! code 1 (CI mode); without it the findings are printed and the exit
//! code stays 0. `--json` emits a JSON array instead of the rustc-style
//! lines. Exit code 2 means the tool itself failed (bad usage, IO error).

use dimmer_lint::diag::{sort_findings, Finding};
use dimmer_lint::rules::{lint_source, ScopeFlags, RULES};
use dimmer_lint::workspace::{find_root, lint_workspace};
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    workspace: bool,
    deny: bool,
    json: bool,
    list_rules: bool,
    root: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: dimmer-lint (--workspace [--root PATH] | FILE...) [--deny] [--json]\n       dimmer-lint --list-rules"
}

fn parse_cli(args: Vec<String>) -> Result<Cli, String> {
    let mut cli = Cli {
        workspace: false,
        deny: false,
        json: false,
        list_rules: false,
        root: None,
        files: Vec::new(),
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => cli.workspace = true,
            "--deny" => cli.deny = true,
            "--json" => cli.json = true,
            "--list-rules" => cli.list_rules = true,
            "--root" => {
                let Some(path) = it.next() else {
                    return Err("--root expects a path".to_string());
                };
                cli.root = Some(PathBuf::from(path));
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`\n{}", usage()));
            }
            file => cli.files.push(PathBuf::from(file)),
        }
    }
    Ok(cli)
}

fn run(cli: Cli) -> Result<Vec<Finding>, String> {
    if cli.workspace {
        let root = match cli.root {
            Some(root) => root,
            None => {
                let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
                find_root(&cwd).ok_or_else(|| {
                    "no workspace root found above the current directory; pass --root".to_string()
                })?
            }
        };
        return lint_workspace(&root);
    }
    if cli.files.is_empty() {
        return Err(format!("nothing to lint\n{}", usage()));
    }
    let mut findings = Vec::new();
    for file in &cli.files {
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        findings.extend(lint_source(
            &file.display().to_string(),
            &src,
            ScopeFlags::all(),
        ));
    }
    sort_findings(&mut findings);
    Ok(findings)
}

fn print_findings(findings: &[Finding], json: bool) {
    if json {
        let rows: Vec<String> = findings.iter().map(Finding::render_json).collect();
        println!("[{}]", rows.join(","));
    } else {
        for f in findings {
            println!("{f}");
        }
        if findings.is_empty() {
            eprintln!("dimmer-lint: clean");
        } else {
            eprintln!("dimmer-lint: {} finding(s)", findings.len());
        }
    }
}

fn main() -> ExitCode {
    // The linter's CLI is the one sanctioned place this tool reads its
    // environment; everything under analysis is forbidden from doing so.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if cli.list_rules {
        for rule in RULES {
            println!("{}  {:<22} {}", rule.id, rule.name, rule.summary);
        }
        return ExitCode::SUCCESS;
    }
    let deny = cli.deny;
    let json = cli.json;
    match run(cli) {
        Ok(findings) => {
            print_findings(&findings, json);
            if deny && !findings.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("dimmer-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
