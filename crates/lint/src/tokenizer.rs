//! A minimal, lossless Rust tokenizer.
//!
//! The lint rules only need to distinguish *code* from *non-code* — a
//! `HashMap` mentioned in a doc comment or a `"panic!"` inside a string
//! literal must never fire a diagnostic — plus identifier/punctuation
//! boundaries precise enough to match call shapes like `.unwrap()` or
//! `Vec::new(`. That is a far smaller contract than a real parser, so this
//! module hand-rolls it over `char_indices` with no dependencies:
//!
//! * line (`//`, `///`, `//!`) and block (`/* */`, nested) comments,
//! * string literals (`"…"`, raw `r#"…"#`, byte `b"…"`, raw-byte `br#"…"#`),
//! * char literals (with escapes) disambiguated from lifetimes,
//! * numbers (so `1.0` never produces a phantom `.` token),
//! * identifiers and single-char punctuation, with `::` fused.
//!
//! Every token carries its 1-based line and column so diagnostics point at
//! the offending token, not at the start of some enclosing construct.

/// What a [`Token`] is. Rules match on [`Ident`](TokenKind::Ident) and
/// [`Punct`](TokenKind::Punct); directives are parsed out of
/// [`LineComment`](TokenKind::LineComment) tokens; everything else exists
/// so that rule matching can skip it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `fn`, `r#type`).
    Ident,
    /// Punctuation: one character, except `::` which is fused.
    Punct,
    /// An integer or float literal, including suffixes (`1_000u64`, `1.0`).
    Number,
    /// A string literal of any flavour, quotes included.
    Str,
    /// A character literal, quotes included.
    Char,
    /// A lifetime (`'a`) or loop label — no closing quote.
    Lifetime,
    /// A `//` comment, text up to (not including) the newline.
    LineComment,
    /// A `/* … */` comment, possibly spanning lines, possibly nested.
    BlockComment,
}

/// One lexed token: kind, the exact source slice, and its 1-based position.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    /// Token class; see [`TokenKind`].
    pub kind: TokenKind,
    /// The verbatim source text of the token.
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl<'a> Token<'a> {
    /// Whether this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }

    /// Whether this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Character-level cursor with 1-based line/column tracking.
struct Cursor<'a> {
    src: &'a str,
    /// Byte offset of the next character.
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn peek3(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes characters while `pred` holds.
    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if !pred(c) {
                break;
            }
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src` losslessly (apart from whitespace) into a flat stream.
///
/// The tokenizer never fails: malformed input (an unterminated string or
/// comment) simply extends the current token to the end of the file, which
/// is the forgiving behaviour a linter wants — rustc will report the real
/// error.
///
/// # Examples
///
/// ```
/// use dimmer_lint::tokenizer::{tokenize, TokenKind};
/// let toks = tokenize("let s = \"Instant::now\"; // Instant::now\nx.unwrap()");
/// // Neither the string nor the comment produces an `Instant` ident:
/// assert!(!toks.iter().any(|t| t.is_ident("Instant")));
/// assert!(toks.iter().any(|t| t.is_ident("unwrap")));
/// assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::LineComment).count(), 1);
/// ```
pub fn tokenize(src: &str) -> Vec<Token<'_>> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col, start) = (cur.line, cur.col, cur.pos);
        let kind = if c.is_whitespace() {
            cur.eat_while(|c| c.is_whitespace());
            continue;
        } else if c == '/' && cur.peek2() == Some('/') {
            cur.eat_while(|c| c != '\n');
            TokenKind::LineComment
        } else if c == '/' && cur.peek2() == Some('*') {
            lex_block_comment(&mut cur);
            TokenKind::BlockComment
        } else if is_raw_string_start(&cur) {
            lex_raw_string(&mut cur);
            TokenKind::Str
        } else if is_plain_string_start(&cur) {
            // Skip the `b` prefix, if any, then the quoted body.
            if c == 'b' {
                cur.bump();
            }
            lex_quoted(&mut cur, '"');
            TokenKind::Str
        } else if c == '\'' {
            lex_char_or_lifetime(&mut cur)
        } else if c == 'r' && cur.peek2() == Some('#') && cur.peek3().is_some_and(is_ident_start) {
            // Raw identifier `r#type`.
            cur.bump();
            cur.bump();
            cur.eat_while(is_ident_continue);
            TokenKind::Ident
        } else if is_ident_start(c) {
            cur.eat_while(is_ident_continue);
            TokenKind::Ident
        } else if c.is_ascii_digit() {
            lex_number(&mut cur);
            TokenKind::Number
        } else {
            cur.bump();
            // Fuse `::` into one token; every other punct is one char.
            if c == ':' && cur.peek() == Some(':') {
                cur.bump();
            }
            TokenKind::Punct
        };
        out.push(Token {
            kind,
            text: &src[start..cur.pos],
            line,
            col,
        });
    }
    out
}

/// `r"…"`, `r#"…"#`, `br"…"`, `br#"…"#` — raw strings, any number of `#`s.
fn is_raw_string_start(cur: &Cursor<'_>) -> bool {
    let rest = &cur.src[cur.pos..];
    let rest = rest.strip_prefix('b').unwrap_or(rest);
    let Some(rest) = rest.strip_prefix('r') else {
        return false;
    };
    let rest = rest.trim_start_matches('#');
    rest.starts_with('"')
}

fn is_plain_string_start(cur: &Cursor<'_>) -> bool {
    match cur.peek() {
        Some('"') => true,
        Some('b') => cur.peek2() == Some('"'),
        _ => false,
    }
}

fn lex_block_comment(cur: &mut Cursor<'_>) {
    // Rust block comments nest.
    cur.bump();
    cur.bump();
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(), cur.peek2()) {
            (Some('/'), Some('*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some('*'), Some('/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break,
        }
    }
}

fn lex_raw_string(cur: &mut Cursor<'_>) {
    if cur.peek() == Some('b') {
        cur.bump();
    }
    cur.bump(); // `r`
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        cur.bump();
        hashes += 1;
    }
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None => break,
            Some('"') => {
                let mut seen = 0usize;
                while seen < hashes && cur.peek() == Some('#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
            Some(_) => {}
        }
    }
}

/// Lexes a `'…'`-delimited literal with escapes; `quote` is `"` or `'`.
fn lex_quoted(cur: &mut Cursor<'_>, quote: char) {
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None => break,
            Some('\\') => {
                cur.bump();
            }
            Some(c) if c == quote => break,
            Some(_) => {}
        }
    }
}

/// On a `'`: decide lifetime/label vs char literal.
///
/// `'a` followed by anything but a closing `'` is a lifetime; `'a'`,
/// `'\n'`, `'\u{7FFF}'` are char literals.
fn lex_char_or_lifetime(cur: &mut Cursor<'_>) -> TokenKind {
    let second = cur.peek2();
    let third = cur.peek3();
    if second.is_some_and(is_ident_start) && third != Some('\'') {
        cur.bump(); // `'`
        cur.eat_while(is_ident_continue);
        TokenKind::Lifetime
    } else {
        lex_quoted(cur, '\'');
        TokenKind::Char
    }
}

fn lex_number(cur: &mut Cursor<'_>) {
    // Digits, underscores, radix/hex letters and type suffixes all continue
    // the literal; a `.` continues it only when followed by a digit, so
    // ranges (`0..n`) and method calls on literals (`1.max(x)`) lex cleanly.
    cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
    if cur.peek() == Some('.') && cur.peek2().is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = tokenize("Vec::new()");
        assert!(toks[0].is_ident("Vec"));
        assert!(toks[1].is_punct("::"));
        assert!(toks[2].is_ident("new"));
        assert!(toks[3].is_punct("("));
        assert!(toks[4].is_punct(")"));
    }

    #[test]
    fn strings_hide_their_content() {
        let toks = tokenize(r#"let x = "HashMap::new() \" still a string";"#);
        assert!(!toks.iter().any(|t| t.is_ident("HashMap")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = tokenize(r###"let x = r#"quote " unwrap() inside"# + r"plain";"###);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 2);
    }

    #[test]
    fn byte_strings() {
        let toks = tokenize(r#"let x = b"panic!" ;"#);
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
    }

    #[test]
    fn nested_block_comments() {
        let toks = tokenize("/* outer /* inner unwrap() */ still comment */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert!(toks[1].is_ident("x"));
    }

    #[test]
    fn line_comments_and_positions() {
        let toks = tokenize("a // trailing unwrap()\nb");
        assert!(toks[0].is_ident("a"));
        assert_eq!(toks[1].kind, TokenKind::LineComment);
        assert!(toks[2].is_ident("b"));
        assert_eq!((toks[2].line, toks[2].col), (2, 1));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 2);
    }

    #[test]
    fn numbers_swallow_their_dots() {
        let toks = tokenize("let x = 1.0f64 + 0x_FF; for i in 0..10 {} 1.max(2);");
        // `1.0f64` is one number; `0..10` is number, `.`, `.`, number;
        // `1.max(2)` keeps `max` as an ident.
        assert!(toks.iter().any(|t| t.text == "1.0f64"));
        assert!(toks.iter().any(|t| t.is_ident("max")));
        assert!(!toks.iter().any(|t| t.text == "0.."));
    }

    #[test]
    fn raw_identifiers() {
        let toks = tokenize("let r#type = 1;");
        assert!(toks.iter().any(|t| t.text == "r#type"));
    }

    #[test]
    fn double_colon_is_fused() {
        assert_eq!(
            kinds("a::b:c"),
            vec![
                TokenKind::Ident,
                TokenKind::Punct,
                TokenKind::Ident,
                TokenKind::Punct,
                TokenKind::Ident
            ]
        );
        assert!(tokenize("a::b")[1].is_punct("::"));
    }

    #[test]
    fn unterminated_constructs_reach_eof() {
        assert_eq!(kinds("\"never closed"), vec![TokenKind::Str]);
        assert_eq!(kinds("/* never closed"), vec![TokenKind::BlockComment]);
    }
}
