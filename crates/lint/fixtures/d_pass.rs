//! D-family fixture: deterministic code the linter must accept.
use std::collections::BTreeMap;

fn deterministic(seed: u64) -> BTreeMap<u32, u32> {
    // The sanctioned RNG: seeded, splittable, no ambient entropy.
    let mut rng = SimRng::seed_from(seed);
    let child = rng.split_seed();
    let mut out = BTreeMap::new();
    out.insert(1, child as u32);
    // Mentions inside strings and comments never count: HashMap, Instant::now().
    let doc = "prefer BTreeMap over HashMap; never call Instant::now()";
    out.insert(2, doc.len() as u32);
    out
}

#[cfg(test)]
mod tests {
    // Test code may use whatever it likes.
    use std::collections::HashMap;

    #[test]
    fn wall_clock_is_fine_in_tests() {
        let _ = std::time::Instant::now();
        let _: HashMap<u8, u8> = HashMap::new();
        let _ = std::env::var("CI");
    }
}
