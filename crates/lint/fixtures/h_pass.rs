//! H-family fixture: a well-formed hot region the linter must accept.

fn hot_loop(buf: &mut Vec<u64>, xs: &[u64]) -> u64 {
    // Setup may allocate freely: the region has not started yet.
    let scratch = vec![0u64; xs.len()];
    let mut acc = 0;
    // lint: hot-begin
    for (i, &x) in xs.iter().enumerate() {
        buf[i % buf.len()] = x ^ scratch[i];
        acc += x;
    }
    let tail: Vec<u64> = xs.iter().rev().take(2).copied().collect(); // lint: allow(H001) -- bounded to two elements, once per call
    // lint: hot-end
    acc + tail.len() as u64
}
