//! P-family fixture: panic-hygienic library code the linter must accept.

fn checked(xs: &[u64]) -> Result<u64, String> {
    let first = xs.first().ok_or("empty input")?;
    // An invariant-backed expect carries an allow with its justification.
    // lint: allow(P001) -- first() above proved the slice is non-empty
    let last = xs.last().expect("non-empty slice has a last element");
    Ok(first + last)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_and_panic() {
        let v: Result<u64, ()> = Ok(3);
        assert_eq!(v.unwrap(), 3);
        if false {
            panic!("test-only panic");
        }
    }
}
