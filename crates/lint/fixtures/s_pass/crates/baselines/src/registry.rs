fn defaults(reg: &mut Registry) {
    reg.register("alpha", "the documented protocol", build_alpha);
}

#[cfg(test)]
mod tests {
    fn fixture_registry(reg: &mut Registry) {
        // Test-only registrations need no documentation.
        reg.register("throwaway", "undocumented on purpose", build_alpha);
    }
}
