// Fixture daemon protocol: both commands are documented.
pub const COMMANDS: &[&str] = &["submit", "status"];
