fn main() {}
