//! P-family fixture: panics in library code the linter must flag.

fn fragile(xs: &[u64]) -> u64 {
    let first = xs.first().unwrap(); // P001: panics on empty input
    let last = xs.last().expect("non-empty"); // P001: same, with prose
    if first > last {
        panic!("unsorted input"); // P002: abort instead of an error
    }
    first + last
}
