//! D-family fixture: every non-deterministic construct the linter must flag.
use std::collections::HashMap; // D001: iteration order varies per process

fn nondeterministic() -> u64 {
    let start = std::time::Instant::now(); // D002: wall clock in simulation code
    let home = std::env::var("HOME"); // D003: ambient environment read
    let mut rng = rand::thread_rng(); // D004: OS-entropy RNG
    let mut m = HashMap::new(); // D001 again (construction site)
    m.insert(home.is_ok(), rng.gen::<u64>());
    start.elapsed().as_nanos() as u64
}
