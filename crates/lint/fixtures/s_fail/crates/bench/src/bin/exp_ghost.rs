fn main() {}
