fn main() {}
