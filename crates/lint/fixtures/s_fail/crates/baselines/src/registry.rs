fn defaults(reg: &mut Registry) {
    reg.register("alpha", "the documented protocol", build_alpha);
    reg.register("beta", "missing from both docs", build_beta);
}
