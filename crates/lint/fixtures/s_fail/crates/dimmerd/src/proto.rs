// Fixture daemon protocol: `drain` is documented nowhere, so S004 fires
// once per document.
pub const COMMANDS: &[&str] = &["submit", "drain"];
