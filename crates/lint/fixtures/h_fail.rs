//! H-family fixture: allocation-shaped calls inside a hot region.

fn hot_loop(xs: &[u64]) -> u64 {
    let mut acc = 0;
    // lint: hot-begin
    for &x in xs {
        let copy = xs.to_vec(); // H001: fresh heap allocation every iteration
        let label = format!("{x}"); // H001: formatting allocates
        acc += copy.len() as u64 + label.len() as u64;
    }
    // lint: hot-end
    acc
}
