//! The end-to-end offline training pipeline:
//! collect traces → trace environment → DQN training → quantized policy.

use crate::collector::TraceCollector;
use crate::dataset::TraceDataset;
use crate::env::TraceEnvironment;
use dimmer_core::{AdaptivityPolicy, DimmerConfig};
use dimmer_neural::Mlp;
use dimmer_rl::{DqnConfig, DqnTrainer};
use dimmer_sim::Topology;

/// Summary of one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingReport {
    /// Number of trace samples used for training.
    pub training_samples: usize,
    /// Number of environment interactions performed.
    pub iterations: usize,
    /// Average reward per step over the final 10 % of training.
    pub tail_reward: f32,
    /// The trained floating-point policy.
    pub policy: Mlp,
}

impl TrainingReport {
    /// The trained policy, quantized for embedded execution.
    pub fn quantized_policy(&self) -> AdaptivityPolicy {
        AdaptivityPolicy::from_mlp(&self.policy)
    }
}

/// Trains a DQN policy on an existing trace dataset.
///
/// # Examples
///
/// ```
/// use dimmer_traces::{TraceCollector, train_policy};
/// use dimmer_core::DimmerConfig;
/// use dimmer_rl::DqnConfig;
/// use dimmer_sim::Topology;
///
/// let topo = Topology::kiel_testbed_18(1);
/// let traces = TraceCollector::new(&topo, 2).collect(30);
/// let report = train_policy(&traces, &DimmerConfig::default(),
///                           &DqnConfig::quick().with_iterations(1_000), 7);
/// assert_eq!(report.iterations, 1_000);
/// ```
pub fn train_policy(
    dataset: &TraceDataset,
    dimmer: &DimmerConfig,
    dqn: &DqnConfig,
    seed: u64,
) -> TrainingReport {
    let mut env = TraceEnvironment::new(dataset.clone(), dimmer.clone(), seed ^ 0xE0);
    let mut trainer = DqnTrainer::new(
        dimmer.state_dim(),
        dimmer_core::AdaptivityAction::COUNT,
        dqn.clone(),
        seed,
    );
    let tail_reward = trainer.train(&mut env);
    TrainingReport {
        training_samples: dataset.len(),
        iterations: dqn.training_iterations,
        tail_reward,
        policy: trainer.into_policy(),
    }
}

/// Collects a fresh trace on `topology` and trains a policy on it — the
/// one-call version of the paper's offline pipeline.
pub fn collect_and_train(
    topology: &Topology,
    trace_rounds: usize,
    dimmer: &DimmerConfig,
    dqn: &DqnConfig,
    seed: u64,
) -> (TraceDataset, TrainingReport) {
    let dataset = TraceCollector::new(topology, seed).collect(trace_rounds);
    let report = train_policy(&dataset, dimmer, dqn, seed);
    (dataset, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimmer_core::{AdaptivityController, GlobalView, StateBuilder};

    #[test]
    fn training_produces_a_table_1_compatible_policy() {
        let topo = Topology::kiel_testbed_18(2);
        let traces = TraceCollector::new(&topo, 3)
            .with_sweep(vec![0.0, 0.30], 3)
            .collect(24);
        let cfg = DimmerConfig::default();
        let report = train_policy(&traces, &cfg, &DqnConfig::quick().with_iterations(2_000), 5);
        assert_eq!(report.policy.num_inputs(), 31);
        assert_eq!(report.policy.num_outputs(), 3);
        // The quantized controller must be executable on Table-I states.
        let controller = AdaptivityController::new(report.quantized_policy(), cfg.clone());
        let state = StateBuilder::new(cfg).build(&GlobalView::new(18), 3);
        let _ = controller.decide(&state);
    }

    #[test]
    fn longer_training_does_not_reduce_tail_reward_dramatically() {
        // Smoke test for convergence: the tail reward of a longer run should
        // be at least comparable to a very short run on the same traces.
        let topo = Topology::kiel_testbed_18(2);
        let traces = TraceCollector::new(&topo, 9)
            .with_sweep(vec![0.0, 0.25], 4)
            .collect(24);
        let cfg = DimmerConfig::default();
        let short = train_policy(&traces, &cfg, &DqnConfig::quick().with_iterations(500), 1);
        let long = train_policy(&traces, &cfg, &DqnConfig::quick().with_iterations(6_000), 1);
        assert!(
            long.tail_reward >= short.tail_reward - 0.15,
            "long run {} should not be far below short run {}",
            long.tail_reward,
            short.tail_reward
        );
    }

    #[test]
    fn collect_and_train_wires_everything_together() {
        let topo = Topology::kiel_testbed_18(8);
        let (dataset, report) = collect_and_train(
            &topo,
            12,
            &DimmerConfig::default(),
            &DqnConfig::quick().with_iterations(500),
            3,
        );
        assert_eq!(dataset.len(), 12);
        assert_eq!(report.training_samples, 12);
        assert!(report.tail_reward >= 0.0);
    }
}
