//! The trace-driven training environment.
//!
//! States are Table-I vectors built from the recorded per-node feedback for
//! the currently selected `N_TX`; actions move `N_TX` by at most one step;
//! rewards follow Eq. 3. Each episode walks a random contiguous stretch of
//! the trace, so the agent experiences calm periods, interference onsets and
//! recoveries in their recorded order.
//!
//! Crucially, the agent does **not** observe the recorded ground truth
//! directly. The deployed coordinator sees sliding-window
//! [`dimmer_core::NodeStats`] averages, delivered only when a node's data
//! flood actually reaches it and decaying to pessimistic values when stale
//! ([`GlobalView`]). Training must
//! therefore route the recorded outcomes through the very same
//! stats-collector → lossy-delivery → global-view pipeline; otherwise the
//! DQN is trained on instantaneous, fully observed states it will never
//! encounter in the protocol loop and behaves erratically under sustained
//! interference.

use crate::dataset::TraceDataset;
use dimmer_core::{
    reward, AdaptivityAction, DimmerConfig, GlobalView, StateBuilder, StatisticsCollector,
    DEFAULT_STATS_WINDOW,
};
use dimmer_rl::{Environment, Step};
use dimmer_sim::{NodeId, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A [`dimmer_rl::Environment`] backed by a [`TraceDataset`].
///
/// # Examples
///
/// ```
/// use dimmer_traces::{TraceCollector, TraceEnvironment};
/// use dimmer_core::DimmerConfig;
/// use dimmer_rl::Environment;
/// use dimmer_sim::Topology;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let topo = Topology::kiel_testbed_18(1);
/// let dataset = TraceCollector::new(&topo, 7).collect(30);
/// let mut env = TraceEnvironment::new(dataset, DimmerConfig::default(), 3);
/// let mut rng = StdRng::seed_from_u64(0);
/// let state = env.reset(&mut rng);
/// assert_eq!(state.len(), 31);
/// let step = env.step(2, &mut rng); // "increase"
/// assert!(step.reward >= 0.0 && step.reward <= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct TraceEnvironment {
    dataset: TraceDataset,
    config: DimmerConfig,
    episode_length: usize,
    position: usize,
    steps_in_episode: usize,
    ntx: u8,
    state_builder: StateBuilder,
    /// Per-node sliding-window statistics, exactly as each device keeps them.
    stats: StatisticsCollector,
    /// The coordinator's (possibly stale) aggregate of received feedback.
    view: GlobalView,
    /// Index of the coordinator node within the recorded deployment (node 0
    /// in both testbed topologies).
    coordinator: usize,
    rng: StdRng,
}

impl TraceEnvironment {
    /// Creates an environment over `dataset`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or its `N_max` differs from the
    /// configuration's.
    pub fn new(dataset: TraceDataset, config: DimmerConfig, seed: u64) -> Self {
        assert!(!dataset.is_empty(), "cannot train on an empty trace");
        assert_eq!(
            dataset.n_max(),
            config.n_max,
            "dataset and config disagree on N_max"
        );
        let num_nodes = dataset.num_nodes();
        TraceEnvironment {
            episode_length: 100,
            position: 0,
            steps_in_episode: 0,
            ntx: config.initial_ntx,
            state_builder: StateBuilder::new(config.clone()),
            stats: StatisticsCollector::new(num_nodes, DEFAULT_STATS_WINDOW),
            view: GlobalView::new(num_nodes),
            coordinator: 0,
            rng: StdRng::seed_from_u64(seed),
            dataset,
            config,
        }
    }

    /// Overrides the episode length (the paper evaluates 100-decision
    /// episodes).
    pub fn with_episode_length(mut self, length: usize) -> Self {
        self.episode_length = length.max(1);
        self
    }

    /// The `N_TX` currently applied by the agent.
    pub fn current_ntx(&self) -> u8 {
        self.ntx
    }

    /// The dataset backing the environment.
    pub fn dataset(&self) -> &TraceDataset {
        &self.dataset
    }

    /// Routes the recorded outcome at `position` (under the current `N_TX`)
    /// through the coordinator's observation pipeline, mirroring
    /// `DimmerRunner::run_round` step by step: nodes share the feedback they
    /// computed *before* this round, a node's feedback only reaches the
    /// coordinator if its data flood did, and undelivered entries age towards
    /// pessimistic values.
    fn ingest_round(&mut self) {
        let sample = self.dataset.sample(self.position % self.dataset.len());
        let outcome = sample.outcome(self.ntx);
        let feedback_before = self.stats.feedback();

        // Every node records its own view of the round.
        for i in 0..self.dataset.num_nodes() {
            self.stats.node_mut(NodeId(i as u16)).record_round(
                outcome.reliabilities[i],
                SimDuration::from_micros(outcome.radio_on_us[i]),
            );
        }

        // A node's piggybacked feedback reaches the coordinator only if its
        // data-slot flood did. The trace does not keep per-slot reception, so
        // delivery is Bernoulli with the coordinator's recorded reception
        // ratio for this round; the coordinator always hears itself.
        let delivery_prob = outcome.reliabilities[self.coordinator].clamp(0.0, 1.0);
        for (i, fb) in feedback_before.iter().enumerate() {
            if i == self.coordinator || self.rng.gen::<f64>() < delivery_prob {
                self.view.update(NodeId(i as u16), *fb);
            }
        }
        self.view.mark_round();
    }

    fn observe(&self) -> Vec<f32> {
        self.state_builder.build(&self.view, self.ntx)
    }
}

impl Environment for TraceEnvironment {
    fn state_dim(&self) -> usize {
        self.config.state_dim()
    }

    fn num_actions(&self) -> usize {
        AdaptivityAction::COUNT
    }

    fn reset(&mut self, rng: &mut StdRng) -> Vec<f32> {
        self.position = rng.gen_range(0..self.dataset.len());
        self.steps_in_episode = 0;
        self.ntx = rng.gen_range(self.config.n_min..=self.config.n_max);
        self.state_builder = StateBuilder::new(self.config.clone());
        // Fresh deployment state: empty statistics windows and an
        // all-pessimistic view, exactly like a freshly started coordinator.
        self.stats = StatisticsCollector::new(self.dataset.num_nodes(), DEFAULT_STATS_WINDOW);
        self.view = GlobalView::new(self.dataset.num_nodes());
        // Seed the history and the view with the current sample's outcome.
        let had_losses = !self
            .dataset
            .sample(self.position)
            .outcome(self.ntx)
            .loss_free();
        self.state_builder.record_history(had_losses);
        self.ingest_round();
        self.observe()
    }

    fn step(&mut self, action: usize, _rng: &mut StdRng) -> Step {
        let action = AdaptivityAction::from_index(action);
        self.ntx = action.apply(self.ntx, self.config.n_min, self.config.n_max);
        self.position = (self.position + 1) % self.dataset.len();
        self.steps_in_episode += 1;

        let outcome = self.dataset.sample(self.position).outcome(self.ntx);
        let r = reward(
            outcome.loss_free(),
            self.ntx,
            self.config.n_max,
            self.config.reward_c,
        );
        let loss_free = outcome.loss_free();
        self.ingest_round();
        self.state_builder.record_history(!loss_free);
        let next_state = self.observe();
        Step {
            next_state,
            reward: r as f32,
            done: self.steps_in_episode >= self.episode_length,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::TraceCollector;
    use dimmer_sim::Topology;

    fn env(rounds: usize, episode: usize) -> TraceEnvironment {
        let topo = Topology::kiel_testbed_18(4);
        let ds = TraceCollector::new(&topo, 11)
            .with_sweep(vec![0.0, 0.30], 3)
            .collect(rounds);
        TraceEnvironment::new(ds, DimmerConfig::default(), 5).with_episode_length(episode)
    }

    #[test]
    fn state_dimension_matches_table_1() {
        let e = env(6, 10);
        assert_eq!(e.state_dim(), 31);
        assert_eq!(e.num_actions(), 3);
    }

    #[test]
    fn episodes_terminate_at_the_configured_length() {
        let mut e = env(6, 4);
        let mut rng = StdRng::seed_from_u64(0);
        e.reset(&mut rng);
        let mut dones = 0;
        for i in 1..=8 {
            let s = e.step(1, &mut rng);
            if s.done {
                dones += 1;
                assert_eq!(i % 4, 0, "episode should end every 4 steps");
                e.reset(&mut rng);
            }
        }
        assert_eq!(dones, 2);
    }

    #[test]
    fn actions_move_ntx_incrementally_and_stay_in_range() {
        let mut e = env(6, 50);
        let mut rng = StdRng::seed_from_u64(1);
        e.reset(&mut rng);
        let mut last = e.current_ntx();
        for i in 0..30 {
            e.step(i % 3, &mut rng);
            let now = e.current_ntx();
            assert!((now as i16 - last as i16).abs() <= 1);
            assert!((1..=8).contains(&now));
            last = now;
        }
    }

    #[test]
    fn rewards_follow_eq_3() {
        let mut e = env(10, 50);
        let mut rng = StdRng::seed_from_u64(2);
        e.reset(&mut rng);
        for _ in 0..20 {
            let before_position = (e.position + 1) % e.dataset.len();
            let action = 1; // maintain
            let ntx_after = AdaptivityAction::from_index(action).apply(e.current_ntx(), 1, 8);
            let expected_outcome = e.dataset.sample(before_position).outcome(ntx_after);
            let expected = reward(expected_outcome.loss_free(), ntx_after, 8, 0.3) as f32;
            let step = e.step(action, &mut rng);
            assert!((step.reward - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn states_are_always_normalized() {
        let mut e = env(8, 30);
        let mut rng = StdRng::seed_from_u64(3);
        let mut state = e.reset(&mut rng);
        for i in 0..40 {
            assert!(state.iter().all(|v| (-1.0..=1.0).contains(v)));
            let step = e.step(i % 3, &mut rng);
            state = if step.done {
                e.reset(&mut rng)
            } else {
                step.next_state
            };
        }
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_dataset_is_rejected() {
        let ds = TraceDataset::new(2, 8, vec![]);
        TraceEnvironment::new(ds, DimmerConfig::default(), 0);
    }

    /// Regression test: the agent must observe through the coordinator's
    /// stats/view pipeline, not the recorded ground truth. Training on
    /// instantaneous fully-observed states made the deployed policy collapse
    /// to `N_TX = 1` under sustained jamming (states the DQN had never seen).
    #[test]
    fn observations_are_windowed_and_decay_not_instantaneous() {
        use crate::dataset::{NtxOutcome, TraceSample};

        let nodes = 3;
        let sample = |rels: [f64; 3], losses: usize| TraceSample {
            outcomes: (0..=8)
                .map(|_| NtxOutcome {
                    reliabilities: rels.to_vec(),
                    radio_on_us: vec![5_000; nodes],
                    losses,
                })
                .collect(),
            interference_ratio: if losses > 0 { 0.35 } else { 0.0 },
        };
        // Two calm rounds, then sustained jamming in which even the
        // coordinator (node 0) receives nothing.
        let mut samples = vec![sample([1.0, 1.0, 1.0], 0); 2];
        samples.extend((0..8).map(|_| sample([0.0, 0.2, 0.2], 50)));
        let ds = TraceDataset::new(nodes, 8, samples);

        let cfg = DimmerConfig::default().with_k_input_nodes(nodes);
        let mut env = TraceEnvironment::new(ds, cfg, 1).with_episode_length(50);
        let mut rng = StdRng::seed_from_u64(0);
        env.reset(&mut rng);
        // Restart deterministically on the calm sample with fresh stats (the
        // reset above may have landed anywhere in the trace).
        env.position = 0;
        env.stats = StatisticsCollector::new(nodes, DEFAULT_STATS_WINDOW);
        env.view = GlobalView::new(nodes);

        // A calm step populates the view with healthy feedback.
        let calm = env.step(1, &mut rng);
        assert!(calm.next_state[3..6].iter().all(|&r| r > 0.5));

        // First jammed step: the ground truth collapses to 0.2 immediately,
        // but the coordinator can only see feedback computed *before* the
        // round — the reliability rows (indices 3..6 for K = 3) must still
        // look healthy, not like the instantaneous truth (which would
        // normalize to -1).
        let step = env.step(1, &mut rng);
        assert_eq!(step.reward, 0.0, "lossy rounds earn zero reward");
        assert!(
            step.next_state[3..6].iter().all(|&r| r > 0.5),
            "feedback must lag one round behind the truth: {:?}",
            &step.next_state[3..6]
        );

        // Under sustained total blackout the non-coordinator entries must
        // age past the staleness limit and decay to pessimistic (-1), which
        // is what the deployed coordinator would see.
        let mut state = step.next_state;
        for _ in 0..5 {
            state = env.step(1, &mut rng).next_state;
        }
        let pessimistic = state[3..6].iter().filter(|&&r| r == -1.0).count();
        assert!(
            pessimistic >= 2,
            "stale entries must decay to pessimistic under blackout: {:?}",
            &state[3..6]
        );
    }
}
