//! Trace collection on the simulated deployment.
//!
//! The collector plays a controlled jamming schedule over the 18-node
//! testbed (alternating calm windows and bursts at different interference
//! ratios, mirroring the paper's multi-day collection over different times
//! and frequencies) and records, for every round, the feedback each
//! `N_TX ∈ {0..N_max}` would have produced under the very same conditions.

use crate::dataset::{NtxOutcome, TraceDataset, TraceSample};
use dimmer_glossy::config::N_TX_MAX;
use dimmer_glossy::NtxAssignment;
use dimmer_lwb::{LwbConfig, RoundExecutor, Schedule};
use dimmer_sim::{
    CompositeInterference, InterferenceModel, NodeId, PeriodicJammer, SimRng, SimTime, Topology,
};

/// Collects training/evaluation traces from a topology.
///
/// # Examples
///
/// ```
/// use dimmer_traces::TraceCollector;
/// use dimmer_sim::Topology;
/// let topo = Topology::kiel_testbed_18(3);
/// let dataset = TraceCollector::new(&topo, 1).collect(20);
/// assert_eq!(dataset.len(), 20);
/// assert_eq!(dataset.num_nodes(), 18);
/// ```
#[derive(Debug)]
pub struct TraceCollector<'a> {
    topology: &'a Topology,
    lwb: LwbConfig,
    /// The interference duty cycles the schedule cycles through. Zero means
    /// a calm window.
    pub duty_cycle_sweep: Vec<f64>,
    /// How many consecutive rounds each duty-cycle window lasts.
    pub rounds_per_window: usize,
    seed: u64,
}

impl<'a> TraceCollector<'a> {
    /// Creates a collector with the paper-like sweep: calm windows
    /// interleaved with 5–35 % 802.15.4 jamming.
    pub fn new(topology: &'a Topology, seed: u64) -> Self {
        TraceCollector {
            topology,
            lwb: LwbConfig::testbed_default(),
            duty_cycle_sweep: vec![0.0, 0.05, 0.0, 0.15, 0.0, 0.25, 0.0, 0.35, 0.10, 0.0, 0.30],
            rounds_per_window: 5,
            seed,
        }
    }

    /// Overrides the duty-cycle sweep.
    pub fn with_sweep(mut self, sweep: Vec<f64>, rounds_per_window: usize) -> Self {
        self.duty_cycle_sweep = sweep;
        self.rounds_per_window = rounds_per_window.max(1);
        self
    }

    /// The interference source active during a window with the given duty
    /// cycle (`None` for calm windows).
    fn interference_for(duty: f64) -> Option<CompositeInterference> {
        if duty <= 0.0 {
            return None;
        }
        let mut comp = CompositeInterference::new();
        for j in PeriodicJammer::kiel_pair(duty) {
            comp.push(Box::new(j));
        }
        Some(comp)
    }

    /// Records `rounds` samples. Each sample evaluates all
    /// `N_TX ∈ {0..N_max}` under identical interference conditions and
    /// identical link randomness.
    pub fn collect(&self, rounds: usize) -> TraceDataset {
        let n = self.topology.num_nodes();
        let sources: Vec<NodeId> = self.topology.node_ids().collect();
        let calm = dimmer_sim::NoInterference;
        let mut samples = Vec::with_capacity(rounds);
        let mut master_rng = SimRng::seed_from(self.seed);

        // One executor per duty-cycle window (consecutive rounds share a
        // window): the round executor compiles the topology and interference
        // mask at construction, so rebuilding it per round would redo that
        // work `rounds × 1` times instead of once per window.
        let window_of =
            |round_idx: usize| (round_idx / self.rounds_per_window) % self.duty_cycle_sweep.len();
        let mut round_idx = 0;
        while round_idx < rounds {
            let window = window_of(round_idx);
            let duty = self.duty_cycle_sweep[window];
            let interference = Self::interference_for(duty);
            let interference_ref: &dyn InterferenceModel = match &interference {
                Some(c) => c,
                None => &calm,
            };
            let mut executor =
                RoundExecutor::new(self.topology, interference_ref, self.lwb.clone());

            while round_idx < rounds && window_of(round_idx) == window {
                let start = SimTime::from_secs(round_idx as u64 * 4);
                // Use the same RNG stream for every N_TX so link fading and
                // burst positions are identical across the candidate actions.
                let round_seed = master_rng.fork(round_idx as u64);

                let mut outcomes = Vec::with_capacity(N_TX_MAX as usize + 1);
                for ntx in 0..=N_TX_MAX {
                    let mut rng = round_seed.clone();
                    let schedule = Schedule::new(
                        round_idx as u64,
                        sources.clone(),
                        NtxAssignment::Uniform(ntx.max(1)),
                    );
                    let round = executor.run_round(&schedule, start, &mut rng);
                    let reliabilities = (0..n)
                        .map(|i| round.node_reception_ratio(NodeId(i as u16)))
                        .collect();
                    let radio_on_us = (0..n)
                        .map(|i| round.node_radio_on_per_slot(NodeId(i as u16)).as_micros())
                        .collect();
                    outcomes.push(NtxOutcome {
                        reliabilities,
                        radio_on_us,
                        losses: round.losses(),
                    });
                }
                samples.push(TraceSample {
                    outcomes,
                    interference_ratio: duty,
                });
                round_idx += 1;
            }
        }
        TraceDataset::new(n, N_TX_MAX, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset(rounds: usize, seed: u64) -> TraceDataset {
        let topo = Topology::kiel_testbed_18(5);
        TraceCollector::new(&topo, seed)
            .with_sweep(vec![0.0, 0.30], 2)
            .collect(rounds)
    }

    #[test]
    fn collects_the_requested_number_of_samples() {
        let ds = small_dataset(8, 1);
        assert_eq!(ds.len(), 8);
        assert_eq!(ds.num_nodes(), 18);
        assert_eq!(ds.n_max(), 8);
    }

    #[test]
    fn calm_windows_are_loss_free_at_moderate_ntx() {
        let ds = small_dataset(2, 2);
        let calm = ds.sample(0);
        assert_eq!(calm.interference_ratio, 0.0);
        assert!(
            calm.outcome(3).losses <= 2,
            "calm rounds should see (almost) no losses"
        );
    }

    #[test]
    fn under_jamming_higher_ntx_does_not_hurt_reliability() {
        let topo = Topology::kiel_testbed_18(5);
        let ds = TraceCollector::new(&topo, 3)
            .with_sweep(vec![0.35], 1)
            .collect(12);
        let mut low = 0.0;
        let mut high = 0.0;
        for s in ds.samples() {
            low += s.outcome(1).worst_reliability();
            high += s.outcome(8).worst_reliability();
        }
        assert!(
            high >= low,
            "N_TX=8 should not be worse than N_TX=1 under 35% jamming ({high} vs {low})"
        );
    }

    #[test]
    fn radio_on_grows_with_ntx_when_calm() {
        let ds = small_dataset(2, 7);
        let calm = ds.sample(0);
        let mean =
            |o: &NtxOutcome| o.radio_on_us.iter().sum::<u64>() as f64 / o.radio_on_us.len() as f64;
        assert!(mean(calm.outcome(8)) > mean(calm.outcome(1)));
    }

    #[test]
    fn collection_is_deterministic_per_seed() {
        assert_eq!(small_dataset(4, 9), small_dataset(4, 9));
        assert_ne!(small_dataset(4, 9), small_dataset(4, 10));
    }
}
