//! # dimmer-traces — trace collection and the offline training environment
//!
//! Training an RL agent directly on a deployment would take hundreds of
//! hours; the paper instead collects traces "over multiple days, for
//! different times of the day and frequencies" and trains the DQN offline in
//! a trace-driven environment (§IV-B "Trace environment"). This crate
//! reproduces that pipeline on the simulated substrate:
//!
//! * [`TraceCollector`] runs LWB rounds over a jamming schedule that sweeps
//!   calm periods and interference ratios and records, for every round
//!   sample, the feedback that **each possible `N_TX`** would have produced
//!   under the same conditions. (The paper approximates this by executing
//!   the actions back-to-back with minimal latency; the simulator can simply
//!   evaluate all of them under identical conditions.)
//! * [`TraceDataset`] stores the samples in a small text format so collected
//!   traces can be committed and reused.
//! * [`TraceEnvironment`] exposes the dataset through the
//!   [`dimmer_rl::Environment`] trait: Table-I states, the
//!   decrease/maintain/increase action space, and the Eq. 3 reward.
//! * [`pipeline::train_policy`] wires collector → environment → DQN trainer
//!   into the one-call training entry point used by the examples and the
//!   benchmark harness.
//!
//! ## Example
//!
//! ```
//! use dimmer_traces::{TraceCollector, TraceEnvironment};
//! use dimmer_core::DimmerConfig;
//! use dimmer_sim::Topology;
//!
//! let topo = Topology::kiel_testbed_18(1);
//! let dataset = TraceCollector::new(&topo, 42).collect(60);
//! assert_eq!(dataset.len(), 60);
//! let env = TraceEnvironment::new(dataset, DimmerConfig::default(), 1);
//! assert_eq!(dimmer_rl::Environment::state_dim(&env), 31);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod collector;
pub mod dataset;
pub mod env;
pub mod pipeline;

pub use collector::TraceCollector;
pub use dataset::{NtxOutcome, TraceDataset, TraceSample};
pub use env::TraceEnvironment;
pub use pipeline::{train_policy, TrainingReport};
