//! Trace datasets: what one recorded round looks like for every possible
//! `N_TX`, plus a dependency-free text serialization.

use std::fmt::Write as _;

/// The outcome one round would have had under a specific `N_TX`.
#[derive(Debug, Clone, PartialEq)]
pub struct NtxOutcome {
    /// Per-node packet reception rate during the round.
    pub reliabilities: Vec<f64>,
    /// Per-node radio-on time per slot, in microseconds.
    pub radio_on_us: Vec<u64>,
    /// Number of missed (slot, destination) pairs network-wide.
    pub losses: usize,
}

impl NtxOutcome {
    /// Network-wide minimum per-node reliability (1.0 for an empty outcome).
    pub fn worst_reliability(&self) -> f64 {
        self.reliabilities.iter().copied().fold(1.0, f64::min)
    }

    /// `true` if the round had no losses at all.
    pub fn loss_free(&self) -> bool {
        self.losses == 0
    }
}

/// One trace sample: the same wireless conditions evaluated under every
/// `N_TX ∈ {0..N_max}`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSample {
    /// Index 0 holds the `N_TX = 0` outcome, index `N_max` the maximal one.
    pub outcomes: Vec<NtxOutcome>,
    /// The interference duty cycle that was active while the sample was
    /// recorded (metadata; not visible to the agent).
    pub interference_ratio: f64,
}

impl TraceSample {
    /// The outcome for a given `N_TX`.
    ///
    /// # Panics
    ///
    /// Panics if `ntx` exceeds the recorded range.
    pub fn outcome(&self, ntx: u8) -> &NtxOutcome {
        &self.outcomes[ntx as usize]
    }

    /// The largest `N_TX` recorded in this sample.
    pub fn n_max(&self) -> u8 {
        (self.outcomes.len() - 1) as u8
    }
}

/// A collection of [`TraceSample`]s recorded on one deployment.
///
/// # Examples
///
/// ```
/// use dimmer_traces::{TraceDataset, TraceSample, NtxOutcome};
/// let sample = TraceSample {
///     outcomes: (0..=8).map(|_| NtxOutcome {
///         reliabilities: vec![1.0, 0.9],
///         radio_on_us: vec![8_000, 9_000],
///         losses: 0,
///     }).collect(),
///     interference_ratio: 0.0,
/// };
/// let ds = TraceDataset::new(2, 8, vec![sample]);
/// let text = ds.to_text();
/// let back = TraceDataset::from_text(&text).unwrap();
/// assert_eq!(ds, back);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDataset {
    num_nodes: usize,
    n_max: u8,
    samples: Vec<TraceSample>,
}

/// Error returned when parsing a serialized trace dataset fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError(String);

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid trace file: {}", self.0)
    }
}

impl std::error::Error for ParseTraceError {}

impl TraceDataset {
    /// Assembles a dataset.
    ///
    /// # Panics
    ///
    /// Panics if a sample's shape does not match `num_nodes` / `n_max`.
    pub fn new(num_nodes: usize, n_max: u8, samples: Vec<TraceSample>) -> Self {
        for s in &samples {
            assert_eq!(
                s.outcomes.len(),
                n_max as usize + 1,
                "sample must cover 0..=N_max"
            );
            for o in &s.outcomes {
                assert_eq!(
                    o.reliabilities.len(),
                    num_nodes,
                    "reliability rows must match nodes"
                );
                assert_eq!(
                    o.radio_on_us.len(),
                    num_nodes,
                    "radio-on rows must match nodes"
                );
            }
        }
        TraceDataset {
            num_nodes,
            n_max,
            samples,
        }
    }

    /// Number of nodes in the recorded deployment.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The largest recorded `N_TX`.
    pub fn n_max(&self) -> u8 {
        self.n_max
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The recorded samples, in chronological order.
    pub fn samples(&self) -> &[TraceSample] {
        &self.samples
    }

    /// One sample by index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn sample(&self, index: usize) -> &TraceSample {
        &self.samples[index]
    }

    /// Splits the dataset into a training and an evaluation part at the given
    /// fraction (chronological split, no shuffling).
    pub fn split(&self, train_fraction: f64) -> (TraceDataset, TraceDataset) {
        let cut = ((self.samples.len() as f64) * train_fraction.clamp(0.0, 1.0)).round() as usize;
        let (a, b) = self.samples.split_at(cut.min(self.samples.len()));
        (
            TraceDataset::new(self.num_nodes, self.n_max, a.to_vec()),
            TraceDataset::new(self.num_nodes, self.n_max, b.to_vec()),
        )
    }

    /// Serializes the dataset to the line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        writeln!(s, "dimmer-trace v1").expect("infallible"); // lint: allow(P001) -- fmt::Write into a String cannot fail
        writeln!(
            s,
            "nodes {} nmax {} samples {}",
            self.num_nodes,
            self.n_max,
            self.samples.len()
        )
        // lint: allow(P001) -- fmt::Write into a String cannot fail
        .expect("infallible");
        for sample in &self.samples {
            writeln!(s, "sample {}", sample.interference_ratio).expect("infallible"); // lint: allow(P001) -- fmt::Write into a String cannot fail
            for (ntx, o) in sample.outcomes.iter().enumerate() {
                let rel: Vec<String> = o.reliabilities.iter().map(|r| format!("{r}")).collect();
                let on: Vec<String> = o.radio_on_us.iter().map(|r| format!("{r}")).collect();
                writeln!(s, "ntx {ntx} losses {}", o.losses).expect("infallible"); // lint: allow(P001) -- fmt::Write into a String cannot fail
                writeln!(s, "rel {}", rel.join(" ")).expect("infallible"); // lint: allow(P001) -- fmt::Write into a String cannot fail
                writeln!(s, "on {}", on.join(" ")).expect("infallible"); // lint: allow(P001) -- fmt::Write into a String cannot fail
            }
        }
        s
    }

    /// Parses a dataset from the text format produced by
    /// [`TraceDataset::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on any structural or numeric problem.
    pub fn from_text(text: &str) -> Result<TraceDataset, ParseTraceError> {
        let err = |m: &str| ParseTraceError(m.to_string());
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        if lines.next() != Some("dimmer-trace v1") {
            return Err(err("missing header"));
        }
        let meta = lines.next().ok_or_else(|| err("missing metadata"))?;
        let parts: Vec<&str> = meta.split_whitespace().collect();
        if parts.len() != 6 || parts[0] != "nodes" || parts[2] != "nmax" || parts[4] != "samples" {
            return Err(err("malformed metadata"));
        }
        let num_nodes: usize = parts[1].parse().map_err(|_| err("bad node count"))?;
        let n_max: u8 = parts[3].parse().map_err(|_| err("bad n_max"))?;
        let count: usize = parts[5].parse().map_err(|_| err("bad sample count"))?;

        let mut samples = Vec::with_capacity(count);
        for _ in 0..count {
            let head = lines.next().ok_or_else(|| err("missing sample header"))?;
            let ratio: f64 = head
                .strip_prefix("sample ")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err("malformed sample header"))?;
            let mut outcomes = Vec::with_capacity(n_max as usize + 1);
            for expected_ntx in 0..=n_max {
                let ntx_line = lines.next().ok_or_else(|| err("missing ntx line"))?;
                let ntx_parts: Vec<&str> = ntx_line.split_whitespace().collect();
                if ntx_parts.len() != 4 || ntx_parts[0] != "ntx" || ntx_parts[2] != "losses" {
                    return Err(err("malformed ntx line"));
                }
                let ntx: u8 = ntx_parts[1].parse().map_err(|_| err("bad ntx"))?;
                if ntx != expected_ntx {
                    return Err(err("ntx entries out of order"));
                }
                let losses: usize = ntx_parts[3].parse().map_err(|_| err("bad loss count"))?;
                let rel_line = lines.next().ok_or_else(|| err("missing rel line"))?;
                let reliabilities: Vec<f64> = rel_line
                    .strip_prefix("rel ")
                    .ok_or_else(|| err("malformed rel line"))?
                    .split_whitespace()
                    .map(|v| v.parse().map_err(|_| err("bad reliability")))
                    .collect::<Result<_, _>>()?;
                let on_line = lines.next().ok_or_else(|| err("missing on line"))?;
                let radio_on_us: Vec<u64> = on_line
                    .strip_prefix("on ")
                    .ok_or_else(|| err("malformed on line"))?
                    .split_whitespace()
                    .map(|v| v.parse().map_err(|_| err("bad radio-on value")))
                    .collect::<Result<_, _>>()?;
                if reliabilities.len() != num_nodes || radio_on_us.len() != num_nodes {
                    return Err(err("row width mismatch"));
                }
                outcomes.push(NtxOutcome {
                    reliabilities,
                    radio_on_us,
                    losses,
                });
            }
            samples.push(TraceSample {
                outcomes,
                interference_ratio: ratio,
            });
        }
        Ok(TraceDataset::new(num_nodes, n_max, samples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny_sample(nodes: usize, n_max: u8, losses: usize) -> TraceSample {
        TraceSample {
            outcomes: (0..=n_max)
                .map(|ntx| NtxOutcome {
                    reliabilities: vec![0.9 + ntx as f64 * 0.01; nodes],
                    radio_on_us: vec![5_000 + ntx as u64 * 1_000; nodes],
                    losses,
                })
                .collect(),
            interference_ratio: 0.1,
        }
    }

    #[test]
    fn roundtrip_is_lossless_structurally() {
        let ds = TraceDataset::new(3, 4, vec![tiny_sample(3, 4, 2), tiny_sample(3, 4, 0)]);
        let back = TraceDataset::from_text(&ds.to_text()).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn outcome_helpers() {
        let o = NtxOutcome {
            reliabilities: vec![1.0, 0.7, 0.95],
            radio_on_us: vec![1, 2, 3],
            losses: 0,
        };
        assert_eq!(o.worst_reliability(), 0.7);
        assert!(o.loss_free());
    }

    #[test]
    fn split_is_chronological() {
        let ds = TraceDataset::new(2, 2, (0..10).map(|i| tiny_sample(2, 2, i)).collect());
        let (train, eval) = ds.split(0.7);
        assert_eq!(train.len(), 7);
        assert_eq!(eval.len(), 3);
        assert_eq!(eval.sample(0).outcomes[0].losses, 7);
    }

    #[test]
    #[should_panic(expected = "must cover 0..=N_max")]
    fn wrong_sample_shape_is_rejected() {
        TraceDataset::new(2, 8, vec![tiny_sample(2, 3, 0)]);
    }

    #[test]
    fn malformed_text_is_rejected() {
        assert!(TraceDataset::from_text("").is_err());
        assert!(TraceDataset::from_text("dimmer-trace v1\nnodes x nmax 2 samples 0").is_err());
        let good = TraceDataset::new(2, 1, vec![tiny_sample(2, 1, 0)]).to_text();
        let broken = good.replace("rel ", "xx ");
        assert!(TraceDataset::from_text(&broken).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_roundtrip(nodes in 1usize..6, n_max in 1u8..6, count in 0usize..5, losses in 0usize..10) {
            let ds = TraceDataset::new(
                nodes,
                n_max,
                (0..count).map(|_| tiny_sample(nodes, n_max, losses)).collect(),
            );
            prop_assert_eq!(TraceDataset::from_text(&ds.to_text()).unwrap(), ds);
        }
    }
}
